// Package core implements ZapC's primary contribution: coordinated
// checkpoint-restart of an entire distributed application across a set
// of cluster nodes (paper §4).
//
// A Manager client orchestrates one Agent per participating pod. The
// checkpoint follows Figure 1: every agent suspends its pod and blocks
// its network independently, takes the (fast) network-state checkpoint
// first, reports its meta-data to the manager, and proceeds with the
// standalone pod checkpoint in parallel with the manager's single
// synchronization — agents may not finish (and re-enable their
// networks) until the manager has collected meta-data from everyone,
// which is the one and only synchronization point the algorithm needs
// (Figure 2). Restart follows Figure 3: the manager derives a
// connect/accept schedule from the merged meta-data and each agent
// recovers connectivity, restores network state, and runs the
// standalone restart, resuming its pod without any end-of-restart
// barrier.
//
// Manager↔agent control traffic, suspension, netfilter manipulation,
// and image serialization are charged to the calibrated cost model;
// connection re-establishment runs as real (simulated) packet exchanges,
// so the reported times have the same structure as the paper's
// measurements.
package core

import (
	"errors"
	"fmt"
	"io"

	"zapc/internal/ckpt"
	"zapc/internal/coord"
	"zapc/internal/imagestore"
	"zapc/internal/memfs"
	"zapc/internal/netckpt"
	"zapc/internal/netstack"
	"zapc/internal/pod"
	"zapc/internal/sim"
	"zapc/internal/trace"
	"zapc/internal/vos"
)

// Errors returned by coordinated operations.
var (
	ErrAborted        = errors.New("core: operation aborted")
	ErrAgentFailure   = errors.New("core: agent failure detected")
	ErrManagerFailure = errors.New("core: manager failure detected")
	ErrTimeout        = errors.New("core: operation watchdog timeout")
)

// Watchdog defaults. A coordinated operation that makes no progress —
// an agent that never reports its meta-data or done message, a control
// message lost by the fabric — aborts after these spans instead of
// relying on the caller's Drive deadline. Both are generous multiples
// of the expected agent time (hundreds of milliseconds on the
// calibrated model).
const (
	DefaultCheckpointTimeout = 30 * sim.Second
	DefaultRestartTimeout    = 60 * sim.Second
)

// Phase identifies progress points of coordinated operations, exposed
// to observers (the fault-injection harness uses them to place faults
// precisely, e.g. a manager crash between the meta-data sync and the
// agents' done reports).
type Phase int

// Operation phases.
const (
	PhaseCheckpointStart Phase = iota + 1
	PhaseMetaSync              // all meta-data collected, 'continue' broadcast
	PhaseCheckpointDone
	PhaseRestartStart
	PhaseRestartDone
)

func (p Phase) String() string {
	switch p {
	case PhaseCheckpointStart:
		return "checkpoint-start"
	case PhaseMetaSync:
		return "meta-sync"
	case PhaseCheckpointDone:
		return "checkpoint-done"
	case PhaseRestartStart:
		return "restart-start"
	case PhaseRestartDone:
		return "restart-done"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// ParsePhase is the inverse of Phase.String, used by declarative fault
// schedules that name phases symbolically. Unknown names return zero.
func ParsePhase(s string) Phase {
	for p := PhaseCheckpointStart; p <= PhaseRestartDone; p++ {
		if p.String() == s {
			return p
		}
	}
	return 0
}

// PhaseHook observes operation phases as the manager reaches them.
type PhaseHook func(Phase)

// CtrlHook perturbs manager<->agent control messages: it is consulted
// once per message and may drop it outright or add delivery delay. The
// fault-injection harness installs hooks to model lossy or congested
// control planes.
type CtrlHook func() (drop bool, delay sim.Duration)

// Mode selects what happens to the pods after a checkpoint.
type Mode int

// Checkpoint modes.
const (
	// Snapshot resumes the application on the same nodes afterwards.
	Snapshot Mode = iota
	// Migrate destroys the source pods after the checkpoint (they are
	// restarted elsewhere from the images).
	Migrate
)

// Options tunes a coordinated checkpoint.
type Options struct {
	Mode Mode
	// Redirect applies the §5 send-queue redirect optimization during
	// migration: post-overlap send-queue data is folded into the peer's
	// checkpoint stream instead of being retransmitted after restart.
	Redirect bool
	// NaiveSync, when set, reproduces the strawman ordering for the
	// ablation study: agents wait for the manager's continue before
	// starting the standalone checkpoint instead of overlapping it with
	// the synchronization (the Figure 2 design).
	NaiveSync bool
	// FlushTo, when non-empty, writes each image to the shared
	// filesystem under this prefix after the pods resume (excluded from
	// the reported checkpoint time, matching the paper's methodology).
	FlushTo string
	// SnapshotFS takes a point-in-time snapshot of the shared
	// filesystem immediately prior to reactivating the pods, as the
	// paper does with SAN/unionfs snapshot functionality, so the
	// checkpoint also has a consistent file-system image.
	SnapshotFS bool
	// Timeout is the checkpoint watchdog: if the coordinated operation
	// has not completed within this span the manager aborts it and the
	// agents resume their pods, instead of hanging until the caller's
	// Drive deadline. Zero selects DefaultCheckpointTimeout; negative
	// disables the watchdog.
	Timeout sim.Duration
	// Workers is the per-agent serialization pool width: the standalone
	// checkpoint fans per-process capture and encoding across this many
	// goroutines, and the modeled memory-copy time divides by the
	// effective parallelism min(Workers, processes). 0 keeps the
	// sequential walk; negative selects one worker per host CPU.
	Workers int
	// Incr, when non-nil, switches the standalone checkpoint to
	// incremental mode through the given tracker set: a generation
	// encodes only the state mutated since the pod's last committed
	// generation (a delta record), with full images at the set's
	// cadence. Tracker state commits only when the whole coordinated
	// operation succeeds, so aborted operations never advance a chain.
	Incr *ckpt.IncrSet
	// Precopy, when non-nil, switches the checkpoint to iterative
	// pre-copy mode: agents snapshot and stream all memory while the pod
	// keeps running, loop re-copying only regions dirtied since the
	// previous round until the dirty set converges (or a budget is hit),
	// and quiesce only for the residual dirty set plus network state —
	// so the suspend window is O(residual + sockets), not O(image).
	// Mutually exclusive with Incr: a pre-copy generation is already a
	// self-contained base+delta chain.
	Precopy *PrecopyOptions
	// Coord overrides the manager's coordination topology for this
	// operation (see Manager.SetCoord). Nil inherits the manager
	// default; with neither set, control traffic uses the legacy flat
	// star — the degenerate fanout=N tree.
	Coord *coord.Config
}

// Pre-copy defaults: the round budget keeps a non-converging writer from
// looping forever, and the convergence threshold is roughly what one
// residual round costs against model memory bandwidth.
const (
	DefaultPrecopyMaxRounds     = 8
	DefaultPrecopyConvergeBytes = 64 << 10
)

// PrecopyOptions tunes the iterative pre-copy loop.
type PrecopyOptions struct {
	// MaxRounds bounds the live copy rounds, the base snapshot included.
	// When the dirty set has not converged after this many rounds the
	// agent quiesces anyway and stop-and-copies the remainder. Zero
	// selects DefaultPrecopyMaxRounds.
	MaxRounds int
	// ConvergeBytes is the convergence threshold: once the dirty set
	// accumulated during a round is at most this many bytes, another
	// round is not worth its overhead and the agent quiesces. Zero
	// selects DefaultPrecopyConvergeBytes.
	ConvergeBytes int64
	// MaxResentBytes caps the total bytes re-copied by rounds after the
	// base snapshot — a bandwidth budget for write-heavy applications
	// whose dirty rate outruns convergence. Zero means unlimited.
	MaxResentBytes int64
}

func (o *PrecopyOptions) maxRounds() int {
	if o.MaxRounds <= 0 {
		return DefaultPrecopyMaxRounds
	}
	return o.MaxRounds
}

func (o *PrecopyOptions) convergeBytes() int64 {
	if o.ConvergeBytes <= 0 {
		return DefaultPrecopyConvergeBytes
	}
	return o.ConvergeBytes
}

// precopyRoundFixed and precopyResidualFixed read the cost model with
// fallbacks so custom Costs predating the pre-copy fields keep working.
func precopyRoundFixed(c sim.Costs) sim.Duration {
	if c.PrecopyRoundFixed > 0 {
		return c.PrecopyRoundFixed
	}
	return c.CheckpointFixed / 25
}

func precopyResidualFixed(c sim.Costs) sim.Duration {
	if c.PrecopyResidualFixed > 0 {
		return c.PrecopyResidualFixed
	}
	return c.CheckpointFixed / 10
}

// effWorkers resolves the Options.Workers convention.
func effWorkers(w int) int {
	if w == 0 {
		return 1
	}
	if w < 0 {
		return ckpt.DefaultWorkers()
	}
	return w
}

// parSpeedup bounds the modeled serialization speedup by the number of
// parallelizable units (processes).
func parSpeedup(workers, procs int) sim.Duration {
	if workers > procs {
		workers = procs
	}
	if workers < 1 {
		workers = 1
	}
	return sim.Duration(workers)
}

// AgentStats reports one agent's timing breakdown.
type AgentStats struct {
	Pod         string
	Suspend     sim.Duration // SIGSTOP + quiescence + network block
	NetCkpt     sim.Duration // network-state checkpoint
	Standalone  sim.Duration // standalone pod checkpoint
	Total       sim.Duration // agent start -> done reported
	ImageBytes  int64        // full (materialized) image size
	NetBytes    int64        // serialized network-state size
	NetQueueLen int64        // payload bytes captured from socket queues
	// WireBytes is what this generation actually wrote to the sink: the
	// full image for a full generation, the delta record otherwise.
	WireBytes int64
	// PeakBuffered is the most bytes the streaming serializer held at
	// once while producing the record — bounded by the frame chunk size
	// plus the largest metadata section, never by the image size.
	PeakBuffered int64
	// Incremental marks a delta generation.
	Incremental bool
	// SuspendWindow is the application downtime this checkpoint caused:
	// SIGSTOP to resume (Snapshot) or teardown (Migrate). For
	// stop-and-copy it covers the whole serialization; for pre-copy only
	// the residual capture — the paper's headline metric.
	SuspendWindow sim.Duration
	// PrecopyRounds counts the live copy rounds (base included) of a
	// pre-copy generation; zero for stop-and-copy.
	PrecopyRounds int
	// PrecopyResentBytes totals the bytes re-copied by live rounds after
	// the base snapshot.
	PrecopyResentBytes int64
}

// CheckpointStats aggregates a coordinated checkpoint.
type CheckpointStats struct {
	Total  sim.Duration // manager invocation -> all agents done
	Agents []AgentStats
	// Coord is the control-plane accounting of the operation: wire
	// messages and bytes per tree link, and the root's share — the
	// coordinator's serialization bottleneck the coordination tree
	// exists to shrink.
	Coord coord.Stats
	// CoordBarrier is the fan-out barrier span: manager invocation to
	// the last agent's receipt of the start command. O(N) on a flat
	// star with per-message sender occupancy, O(fanout x depth) on the
	// tree.
	CoordBarrier sim.Duration
}

// MaxNetCkpt returns the slowest per-agent network checkpoint.
func (s *CheckpointStats) MaxNetCkpt() sim.Duration {
	var m sim.Duration
	for _, a := range s.Agents {
		if a.NetCkpt > m {
			m = a.NetCkpt
		}
	}
	return m
}

// MaxSuspendWindow returns the longest per-agent application downtime —
// the figure pre-copy mode exists to shrink.
func (s *CheckpointStats) MaxSuspendWindow() sim.Duration {
	var m sim.Duration
	for _, a := range s.Agents {
		if a.SuspendWindow > m {
			m = a.SuspendWindow
		}
	}
	return m
}

// MaxImageBytes returns the largest pod image (the paper's Figure 6c
// metric).
func (s *CheckpointStats) MaxImageBytes() int64 {
	var m int64
	for _, a := range s.Agents {
		if a.ImageBytes > m {
			m = a.ImageBytes
		}
	}
	return m
}

// CheckpointResult carries the images plus measurements. Serialized
// records are never materialized in the result: they stream to the
// manager's image store when Options.FlushTo is set, and can be
// re-streamed deterministically from the images at any time.
type CheckpointResult struct {
	// Images holds the materialized full image of every pod — even for
	// incremental generations, so restart paths never reconstruct
	// chains in memory.
	Images map[netstack.IP]*ckpt.Image
	Stats  CheckpointStats
	// FSSnapshot is the consistent file-system image captured before
	// the pods resumed (nil unless Options.SnapshotFS).
	FSSnapshot *memfs.FS
	Err        error
}

// Manager is the front-end client coordinating checkpoints and restarts.
// It can run anywhere; it reaches agents over reliable control
// connections whose latency is modeled by Costs.CtrlLatency.
type Manager struct {
	w         *sim.World
	nw        *netstack.Network
	fs        *memfs.FS
	store     imagestore.Store // sink for flushed checkpoint records
	failed    bool
	workers   int // restart-side serialization pool width (0 = sequential)
	phaseHook PhaseHook
	ctrlHook  CtrlHook
	coordCfg  *coord.Config
	tr        *trace.Tracer
	reg       *trace.Registry
	ckptOps   []*ckptOp // in-flight coordinated checkpoints, registration order
}

// SetTracer installs an observability pair: every coordinated operation
// then emits phase spans into tr and pipeline counters into reg. Either
// may be nil; both default to nil, which costs the pipeline nothing but
// nil checks.
func (m *Manager) SetTracer(tr *trace.Tracer, reg *trace.Registry) {
	m.tr = tr
	m.reg = reg
}

// Tracer returns the manager's tracer (nil when tracing is off).
func (m *Manager) Tracer() *trace.Tracer { return m.tr }

// Metrics returns the manager's metrics registry (nil when off).
func (m *Manager) Metrics() *trace.Registry { return m.reg }

// SetStore replaces the image store that FlushTo streams records into.
// The default is the shared filesystem; a netstack-backed remote store
// ships records straight to a peer node instead (the paper's direct
// checkpoint-to-network migration).
func (m *Manager) SetStore(s imagestore.Store) { m.store = s }

// Store returns the manager's image store.
func (m *Manager) Store() imagestore.Store { return m.store }

// SetWorkers sets the restart-side worker-pool width: the modeled
// restore time of each agent divides by min(workers, processes), the
// mirror of Options.Workers on the checkpoint side. 0 keeps the
// sequential model; negative selects one worker per host CPU.
func (m *Manager) SetWorkers(n int) { m.workers = n }

// Fail simulates a crash of the Manager client. Agents notice their
// control connection break and gracefully abort in-flight operations,
// resuming their pods (§4: "a failure of the Manager itself will be
// noted by the Agents ... the operation will be gracefully aborted, and
// the application will resume its execution").
func (m *Manager) Fail() { m.failed = true }

// Failed reports whether the manager client has crashed.
func (m *Manager) Failed() bool { return m.failed }

// Recover models starting a replacement Manager client after a crash.
// The manager is stateless between operations (all durable state lives
// in the checkpoint images on shared storage), so recovery is just a
// fresh client against the same substrate.
func (m *Manager) Recover() { m.failed = false }

// SetPhaseHook installs an observer of operation phases (nil removes).
func (m *Manager) SetPhaseHook(h PhaseHook) { m.phaseHook = h }

// SetCtrlHook installs a control-message perturbation hook (nil
// removes). Every manager<->agent control message consults it.
func (m *Manager) SetCtrlHook(h CtrlHook) { m.ctrlHook = h }

// SetCoord installs the manager's default coordination topology for
// subsequent coordinated operations; Options.Coord overrides it per
// operation. Nil (the default) keeps the flat star, which schedules
// exactly the legacy per-member control messages.
func (m *Manager) SetCoord(cfg *coord.Config) { m.coordCfg = cfg }

// Coord returns the manager's default coordination topology (nil when
// the flat star is in effect).
func (m *Manager) Coord() *coord.Config { return m.coordCfg }

// newPlane builds the control plane for one coordinated operation over
// n members. The hook closure reads m.ctrlHook at each send so hooks
// installed mid-operation (as the fault injector does) take effect
// immediately, exactly as the legacy ctrl path did.
func (m *Manager) newPlane(n int, override *coord.Config) *coord.Plane {
	cfg := override
	if cfg == nil {
		cfg = m.coordCfg
	}
	return coord.NewPlane(m.w, coord.NewTopology(n, cfg), func() (bool, sim.Duration) {
		if m.ctrlHook != nil {
			return m.ctrlHook()
		}
		return false, 0
	}, m.reg)
}

func (m *Manager) notify(p Phase) {
	if m.phaseHook != nil {
		m.phaseHook(p)
	}
}

// NewManager creates a manager for the given cluster substrate. Flushed
// records stream to the shared filesystem unless SetStore installs a
// different sink.
func NewManager(w *sim.World, nw *netstack.Network, fs *memfs.FS) *Manager {
	return &Manager{w: w, nw: nw, fs: fs, store: imagestore.NewFS(fs)}
}

// dropOp removes a finished or aborted checkpoint operation from the
// in-flight registry.
func (m *Manager) dropOp(op *ckptOp) {
	for i, o := range m.ckptOps {
		if o == op {
			m.ckptOps = append(m.ckptOps[:i], m.ckptOps[i+1:]...)
			return
		}
	}
}

// AbortCheckpoints synchronously aborts every in-flight coordinated
// checkpoint with the given reason; each operation's completion
// callback fires with the error before this returns (restart
// operations are unaffected). The supervisor uses it to preempt a
// doomed cycle once the failure detector has decided a failover —
// left alone, the cycle only aborts when the agent failure propagates
// or the watchdog fires, and that whole wait would sit on the recovery
// critical path.
func (m *Manager) AbortCheckpoints(err error) int {
	ops := append([]*ckptOp(nil), m.ckptOps...)
	for _, op := range ops {
		op.abort(err)
	}
	return len(ops)
}

// ctrl models one manager<->agent control message.
func (m *Manager) ctrl(fn func()) { m.ctrlAfter(0, fn) }

// ctrlAfter models a control message carrying extra serialization or
// processing delay. The injected control hook may drop the message
// (it is then never delivered) or stretch its latency.
func (m *Manager) ctrlAfter(extra sim.Duration, fn func()) {
	d := m.w.Costs.CtrlLatency + extra
	if m.ctrlHook != nil {
		drop, delay := m.ctrlHook()
		if drop {
			return
		}
		d += delay
	}
	m.w.After(d, fn)
}

// Checkpoint coordinates a checkpoint of the given pods (one agent
// each). onDone receives the images and the timing breakdown. The
// operation aborts gracefully — pods resume — if any hosting node fails
// mid-flight.
func (m *Manager) Checkpoint(pods []*pod.Pod, opts Options, onDone func(*CheckpointResult)) {
	if len(pods) == 0 {
		onDone(&CheckpointResult{Err: errors.New("core: no pods to checkpoint")})
		return
	}
	if opts.Precopy != nil && opts.Incr != nil {
		onDone(&CheckpointResult{Err: errors.New("core: Precopy and Incr are mutually exclusive (a pre-copy generation is already a chain)")})
		return
	}
	op := &ckptOp{
		m:      m,
		opts:   opts,
		start:  m.w.Now(),
		agents: make([]*ckptAgent, len(pods)),
		result: &CheckpointResult{Images: make(map[netstack.IP]*ckpt.Image)},
		onDone: onDone,
	}
	for i, p := range pods {
		op.agents[i] = &ckptAgent{op: op, pod: p, idx: i}
	}
	// The control plane for this operation: the flat star unless a
	// coordination tree is configured, in which case sub-coordinators
	// relay fan-outs and aggregate fan-ins into one batched message per
	// link per phase.
	op.plane = m.newPlane(len(pods), opts.Coord)
	m.ckptOps = append(m.ckptOps, op)
	op.readyG = op.plane.Gather("precopy-ready", func(int) { op.readyArrived() })
	op.metaG = op.plane.Gather("meta", func(int) { op.metaArrived() })
	op.doneG = op.plane.Gather("done", func(i int) { op.doneArrived(op.agents[i]) })
	// Arm the watchdog: a stalled agent (lost control message, node
	// wedged before reporting) aborts the operation and resumes the
	// pods rather than hanging until the caller's deadline.
	timeout := opts.Timeout
	if timeout == 0 {
		timeout = DefaultCheckpointTimeout
	}
	if timeout > 0 {
		op.watchdog = m.w.After(timeout, func() {
			op.abort(fmt.Errorf("%w: checkpoint stalled for %v", ErrTimeout, timeout))
		})
	}
	mode := "snapshot"
	if opts.Mode == Migrate {
		mode = "migrate"
	}
	op.span = m.tr.Start(nil, "ckpt/coordinated", trace.Track("manager"),
		trace.I64("pods", int64(len(pods))), trace.Str("mode", mode),
		trace.I64("incremental", b2i(opts.Incr != nil)),
		trace.I64("precopy", b2i(opts.Precopy != nil)))
	m.notify(PhaseCheckpointStart)
	// Step M1: broadcast 'checkpoint' to all agents (one message per
	// member on the flat star, one batched message per tree link
	// otherwise).
	op.plane.Broadcast("start", nil, func(i int) { op.agents[i].start() })
}

type ckptOp struct {
	m        *Manager
	opts     Options
	start    sim.Time
	agents   []*ckptAgent
	metas    int
	dones    int
	readies  int // pre-copy agents whose live iteration has converged
	stopSent bool
	contSent bool
	aborted  bool
	watchdog sim.EventID
	result   *CheckpointResult
	onDone   func(*CheckpointResult)
	span     *trace.Span
	plane    *coord.Plane
	readyG   *coord.Gather // pre-copy convergence reports
	metaG    *coord.Gather // meta-data reports
	doneG    *coord.Gather // completion reports
}

// b2i renders a bool as a 0/1 trace attribute.
func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

type ckptAgent struct {
	op          *ckptOp
	idx         int // member index in the coordination topology
	pod         *pod.Pod
	began       sim.Time
	suspendedAt sim.Time     // when the pod was SIGSTOPped (== began for stop-and-copy)
	suspend     sim.Duration // SIGSTOP -> quiescent
	window      sim.Duration // SIGSTOP -> resume/teardown (application downtime)
	netTime     sim.Duration
	saTime      sim.Duration
	img         *ckpt.Image
	pend        *ckpt.Pending    // incremental mode only; committed on success
	pre         *ckpt.Precopy    // pre-copy mode only
	preResent   int64            // bytes re-copied by live rounds after the base
	preRounds   int              // live rounds taken (base included)
	stats       ckpt.StreamStats // size/peak/checksum of the serialized record
	netBytes    int64
	queueLen    int64
	repolls     int64        // quiescence re-polls (exponential backoff)
	backoff     sim.Duration // current quiescence re-poll interval
	saDone      bool
	contRecvd   bool
	finished    bool
	span        *trace.Span // ckpt/agent, open from suspend to done-report
	preSpan     *trace.Span // ckpt/precopy, open across the live rounds
	qSpan       *trace.Span // ckpt/quiesce
	saSpan      *trace.Span // ckpt/serialize
}

func (op *ckptOp) abort(err error) {
	if op.aborted {
		return
	}
	op.aborted = true
	op.m.dropOp(op)
	op.m.w.Cancel(op.watchdog)
	// Graceful abort: resume every surviving pod.
	for _, a := range op.agents {
		if !a.pod.Destroyed() && !a.pod.Node().Failed() {
			a.pod.UnblockNetwork()
			a.pod.Resume()
		}
	}
	// The abort decision still fans down the tree; the simulation
	// applies its effects synchronously at decision time (agents also
	// detect failure independently, per §4), so only the control-plane
	// accounting is charged.
	op.plane.AccountAbort()
	op.m.tr.Instant(op.span, "ckpt/abort", trace.Str("err", err.Error()))
	op.span.End(trace.Str("outcome", "aborted"))
	op.m.reg.Counter("ckpt_aborts_total").Add(1)
	op.result.Err = err
	op.onDone(op.result)
}

func (op *ckptOp) checkFailure() bool {
	if op.m.failed {
		op.abort(ErrManagerFailure)
		return true
	}
	for _, a := range op.agents {
		if a.pod.Node().Failed() {
			op.abort(fmt.Errorf("%w: node %s", ErrAgentFailure, a.pod.Node().Name()))
			return true
		}
	}
	return false
}

// start is agent step 1. In stop-and-copy mode the pod is suspended and
// its network blocked immediately; in pre-copy mode the agent first runs
// the live copy rounds and quiesces only once the dirty set converged or
// a budget was hit.
func (a *ckptAgent) start() {
	if a.op.aborted || a.op.checkFailure() {
		return
	}
	a.began = a.op.m.w.Now()
	a.span = a.op.m.tr.Start(a.op.span, "ckpt/agent", trace.Track(a.pod.Name()))
	if a.op.opts.Precopy != nil {
		a.precopyBase()
		return
	}
	a.quiesce()
}

// quiesce suspends the pod and blocks its network — the start of the
// application's downtime window in either mode.
func (a *ckptAgent) quiesce() {
	costs := a.op.m.w.Costs
	procs := a.pod.Procs()
	a.qSpan = a.op.m.tr.Start(a.span, "ckpt/quiesce",
		trace.I64("procs", int64(len(procs))),
		trace.I64("sockets", int64(len(a.pod.Stack().Sockets()))))
	a.suspendedAt = a.op.m.w.Now()
	a.pod.Suspend()
	a.pod.BlockNetwork()
	cost := costs.SignalDeliver*sim.Duration(len(procs)) +
		costs.FilterRule*sim.Duration(len(a.pod.Stack().Sockets())+1)
	a.op.m.w.After(cost, a.waitQuiescent)
}

// waitQuiescent re-polls until every process parked at a step boundary.
// The re-poll interval starts at 200µs and doubles each round, capped at
// the operation watchdog timeout, so a pod wedged by an injected fault
// costs O(log) events rather than an unbounded 200µs spin.
func (a *ckptAgent) waitQuiescent() {
	if a.op.aborted || a.op.checkFailure() {
		return
	}
	if !a.pod.Quiescent() {
		a.repolls++
		a.op.m.reg.Counter("ckpt_quiesce_repolls_total").Add(1)
		d := a.backoff
		if d <= 0 {
			d = 200 * sim.Microsecond
		}
		maxWait := a.op.opts.Timeout
		if maxWait <= 0 {
			maxWait = DefaultCheckpointTimeout
		}
		if d > maxWait {
			d = maxWait
		}
		a.backoff = 2 * d
		a.op.m.w.After(d, a.waitQuiescent)
		return
	}
	a.suspend = sim.Duration(a.op.m.w.Now() - a.suspendedAt)
	a.qSpan.End(trace.I64("repolls", a.repolls))
	a.netCheckpoint()
}

// precopyBase is pre-copy round 1: snapshot the full memory of the
// still-running pod at a watermark and stream it out. The serialization
// cost is charged while the application keeps executing — writes that
// land during the copy dirty their regions past the watermark and are
// picked up by the next round.
func (a *ckptAgent) precopyBase() {
	w := a.op.m.w
	costs := w.Costs
	popts := a.op.opts.Precopy
	workers := effWorkers(a.op.opts.Workers)
	a.preSpan = a.op.m.tr.Start(a.span, "ckpt/precopy",
		trace.I64("max_rounds", int64(popts.maxRounds())),
		trace.I64("converge_bytes", popts.convergeBytes()))
	pre, rec, err := ckpt.BeginPrecopy(a.pod, workers)
	if err != nil {
		a.op.abort(err)
		return
	}
	a.pre = pre
	roundStart := w.Now()
	bytes := costs.EffImageBytes(rec.Stats().Bytes)
	cost := w.Jitter(costs.CheckpointFixed, 0.25) +
		costs.MemCopyTime(bytes)/parSpeedup(workers, len(rec.Image.Procs))
	w.After(cost, func() { a.precopyRoundDone(rec, roundStart, 0) })
}

// precopyRoundDone closes out one live round: emit its span, flush its
// record to the store, and either run another round or quiesce,
// depending on the dirty set against the convergence rule and budgets.
func (a *ckptAgent) precopyRoundDone(rec *ckpt.PrecopyRecord, roundStart sim.Time, resent int64) {
	if a.op.aborted || a.op.checkFailure() {
		return
	}
	w := a.op.m.w
	round := a.pre.Rounds()
	a.preRounds = round
	a.op.m.tr.SpanBetween(a.preSpan, fmt.Sprintf("ckpt/precopy/round-%d", round),
		int64(roundStart), int64(w.Now()),
		trace.I64("bytes", rec.Stats().Bytes),
		trace.I64("resent_bytes", resent))
	a.op.m.reg.Counter("ckpt_encode_bytes_total").Add(rec.Stats().Bytes)
	a.op.m.reg.Gauge("store_peak_buffered_bytes").SetMax(rec.Stats().Peak)
	if err := a.flushPrecopyRecord(rec, round); err != nil {
		a.op.abort(err)
		return
	}
	popts := a.op.opts.Precopy
	dirty := a.pre.DirtyBytes()
	reason := ""
	switch {
	case dirty <= popts.convergeBytes():
		reason = "converged"
	case round >= popts.maxRounds():
		reason = "round-budget"
	case popts.MaxResentBytes > 0 && a.preResent >= popts.MaxResentBytes:
		reason = "byte-budget"
	}
	if reason == "" {
		a.precopyRound()
		return
	}
	// Stop iterating: record why on the timeline, close the live phase,
	// and report 'ready' to the manager. The pod keeps RUNNING until
	// every agent has converged and the manager broadcasts the quiesce —
	// without this barrier the fastest pod would sit suspended waiting
	// for the slowest agent's rounds, putting the stagger between agents
	// back into the downtime window.
	a.op.m.tr.Instant(a.preSpan, "ckpt/precopy/stop",
		trace.Str("reason", reason),
		trace.I64("dirty_bytes", dirty),
		trace.I64("rounds", int64(round)))
	a.preSpan.End(trace.I64("rounds", int64(round)),
		trace.I64("resent_bytes", a.preResent))
	a.op.readyG.Report(a.idx, 0)
}

// readyArrived is the pre-copy synchronization point: once every agent's
// live iteration has converged (or hit its budget), the manager
// broadcasts a simultaneous quiesce. State dirtied while waiting at the
// barrier is simply part of the residual the final capture picks up.
func (op *ckptOp) readyArrived() {
	if op.aborted {
		return
	}
	op.readies++
	if op.readies < len(op.agents) || op.stopSent {
		return
	}
	op.stopSent = true
	op.m.tr.Instant(op.span, "ckpt/precopy/sync", trace.I64("agents", int64(len(op.agents))))
	op.plane.Broadcast("quiesce", nil, func(i int) {
		if op.aborted || op.checkFailure() {
			return
		}
		op.agents[i].quiesce()
	})
}

// precopyRound runs one more live round: re-snapshot, diff against the
// previous round's watermark, and stream only the dirtied state.
func (a *ckptAgent) precopyRound() {
	w := a.op.m.w
	costs := w.Costs
	workers := effWorkers(a.op.opts.Workers)
	rec, err := a.pre.Round()
	if err != nil {
		a.op.abort(err)
		return
	}
	resent := rec.Stats().Bytes
	a.preResent += resent
	roundStart := w.Now()
	bytes := costs.EffImageBytes(resent)
	cost := w.Jitter(precopyRoundFixed(costs), 0.25) +
		costs.MemCopyTime(bytes)/parSpeedup(workers, len(a.pod.Procs()))
	w.After(cost, func() { a.precopyRoundDone(rec, roundStart, resent) })
}

// flushPrecopyRecord streams one live round into the manager's store as
// it completes — the base as <pod>.img, round N as <pod>.rNN.delta — so
// by quiesce time everything but the residual is already durable. No-op
// when the checkpoint does not flush.
func (a *ckptAgent) flushPrecopyRecord(rec *ckpt.PrecopyRecord, round int) error {
	if a.op.opts.FlushTo == "" {
		return nil
	}
	var path string
	if rec.Image != nil {
		path = fmt.Sprintf("%s/%s.img", a.op.opts.FlushTo, a.pod.Name())
	} else {
		path = fmt.Sprintf("%s/%s.r%02d.delta", a.op.opts.FlushTo, a.pod.Name(), round-1)
	}
	fSpan := a.op.m.tr.Start(a.preSpan, "store/flush",
		trace.Track(a.pod.Name()), trace.Str("path", path))
	wc, err := a.op.m.store.Create(path)
	if err == nil {
		if _, serr := rec.Stream(wc); serr != nil {
			wc.Close()
			err = serr
		} else {
			err = wc.Close()
		}
	}
	if err != nil {
		fSpan.End(trace.Str("err", err.Error()))
		return err
	}
	fSpan.End(trace.I64("bytes", rec.Stats().Bytes))
	return nil
}

// netCheckpoint is agent step 2: take the network-state checkpoint, then
// (2a) report the meta-data to the manager.
func (a *ckptAgent) netCheckpoint() {
	costs := a.op.m.w.Costs
	netImg, _, err := netckpt.CheckpointStack(a.pod.Stack())
	if err != nil {
		a.op.abort(err)
		return
	}
	a.netBytes = netImg.Bytes()
	a.queueLen = netImg.QueueBytes()
	nSpan := a.op.m.tr.Start(a.span, "ckpt/net-ckpt",
		trace.I64("sockets", int64(len(netImg.Sockets))))
	// Cost: read the full option set per socket plus copy queue payload.
	nSocks := len(netImg.Sockets)
	cost := costs.SockOptRead*sim.Duration(nSocks*len(netstack.AllOpts())) +
		costs.MemCopyTime(a.netBytes) +
		500*sim.Microsecond // walk kernel tables
	a.op.m.w.After(cost, func() {
		if a.op.aborted {
			return
		}
		a.netTime = cost
		nSpan.End(trace.I64("bytes", a.netBytes),
			trace.I64("queue_bytes", a.queueLen),
			trace.I64("queue_msgs", netImg.QueueMsgs()))
		a.op.m.reg.Counter("netstack_drained_msgs_total").Add(netImg.QueueMsgs())
		a.op.m.reg.Counter("netstack_drained_bytes_total").Add(a.queueLen)
		// 2a: report meta-data (the manager only needs the connectivity
		// map; transferring it costs latency plus wire time). In a tree
		// the report ascends in per-link batches; sub-coordinators hold
		// their subtree's reports until all have arrived.
		a.op.metaG.Report(a.idx, costs.NetTransferTime(a.netBytes))
		if a.op.opts.NaiveSync {
			// Ablation: wait for 'continue' before the standalone save.
			return
		}
		a.standalone()
	})
}

// standalone is agent step 3: the standalone pod checkpoint, overlapped
// with the manager synchronization. In pre-copy mode only the residual
// dirty set is captured here — the bulk of the image already streamed
// out during the live rounds — so this, the dominant term of the suspend
// window, shrinks from O(image) to O(final dirty set).
func (a *ckptAgent) standalone() {
	if a.op.aborted || a.op.checkFailure() {
		return
	}
	w := a.op.m.w
	costs := w.Costs
	workers := effWorkers(a.op.opts.Workers)
	if a.pre != nil {
		rec, err := a.pre.Finalize()
		if err != nil {
			a.op.abort(err)
			return
		}
		a.img = a.pre.FinalImage()
		a.stats = rec.Stats()
		a.saSpan = a.op.m.tr.Start(a.span, "ckpt/serialize",
			trace.I64("workers", int64(workers)),
			trace.I64("precopy_residual", 1))
		bytes := costs.EffImageBytes(a.stats.Bytes)
		cost := w.Jitter(precopyResidualFixed(costs), 0.25) +
			costs.MemCopyTime(bytes)/parSpeedup(workers, len(a.img.Procs))
		w.After(cost, func() {
			if a.op.aborted {
				return
			}
			a.saTime = cost
			a.saDone = true
			a.saSpan.End(trace.I64("wire_bytes", a.stats.Bytes),
				trace.I64("peak_buffered", a.stats.Peak))
			a.op.m.reg.Counter("ckpt_encode_bytes_total").Add(a.stats.Bytes)
			a.op.m.reg.Gauge("store_peak_buffered_bytes").SetMax(a.stats.Peak)
			a.maybeFinish()
		})
		return
	}
	var img *ckpt.Image
	if a.op.opts.Incr != nil {
		pend, err := a.op.opts.Incr.Capture(a.pod, workers)
		if err != nil {
			a.op.abort(err)
			return
		}
		a.pend = pend
		a.stats = pend.Stats()
		img = pend.Image
	} else {
		var err error
		img, err = ckpt.CheckpointPodWith(a.pod, workers)
		if err != nil {
			a.op.abort(err)
			return
		}
		// Size the record by streaming it to a counting sink; nothing is
		// materialized, and the peak-buffering figure comes for free.
		st, serr := img.EncodeStream(io.Discard)
		if serr != nil {
			a.op.abort(serr)
			return
		}
		a.stats = st
	}
	a.img = img
	a.saSpan = a.op.m.tr.Start(a.span, "ckpt/serialize",
		trace.I64("workers", int64(workers)),
		trace.I64("incremental", b2i(a.pend != nil && !a.pend.Full())))
	saStart := w.Now()
	// The copy cost covers what is actually written — the delta record
	// in incremental mode — and divides by the effective serialization
	// parallelism (per-process capture fans out across the pool). The
	// fixed and copy components stay separate so the modeled worker
	// lanes can start where the fixed prologue ends.
	bytes := costs.EffImageBytes(a.stats.Bytes)
	fixed := w.Jitter(costs.CheckpointFixed, 0.25)
	cost := fixed + costs.MemCopyTime(bytes)/parSpeedup(workers, len(img.Procs))
	w.After(cost, func() {
		if a.op.aborted {
			return
		}
		a.saTime = cost
		a.saDone = true
		a.emitWorkerLanes(saStart, fixed, workers)
		a.saSpan.End(trace.I64("wire_bytes", a.stats.Bytes),
			trace.I64("peak_buffered", a.stats.Peak))
		a.op.m.reg.Counter("ckpt_encode_bytes_total").Add(a.stats.Bytes)
		a.op.m.reg.Gauge("store_peak_buffered_bytes").SetMax(a.stats.Peak)
		a.maybeFinish()
	})
}

// emitWorkerLanes reconstructs the per-worker serialization schedule the
// cost model implies and records it as modeled sub-spans of
// ckpt/serialize. Real goroutine interleavings are nondeterministic, so
// the lanes are computed analytically — greedy least-busy assignment of
// per-process copy costs, the same policy a work-stealing pool converges
// to — and emitted with explicit timestamps from a single event
// callback, which keeps the trace byte-deterministic. Each lane reports
// its encode time and how long it idled waiting for the slowest peer.
func (a *ckptAgent) emitWorkerLanes(saStart sim.Time, fixed sim.Duration, workers int) {
	tr := a.op.m.tr
	if tr == nil || len(a.img.Procs) == 0 {
		return
	}
	costs := a.op.m.w.Costs
	if workers > len(a.img.Procs) {
		workers = len(a.img.Procs)
	}
	if workers < 1 {
		workers = 1
	}
	busy := make([]sim.Duration, workers)
	laneBytes := make([]int64, workers)
	laneProcs := make([]int64, workers)
	for _, p := range a.img.Procs {
		wi := 0
		for j := 1; j < workers; j++ {
			if busy[j] < busy[wi] {
				wi = j
			}
		}
		busy[wi] += costs.MemCopyTime(costs.EffImageBytes(p.ApproxBytes()))
		laneBytes[wi] += p.ApproxBytes()
		laneProcs[wi]++
	}
	var longest sim.Duration
	for _, b := range busy {
		if b > longest {
			longest = b
		}
	}
	lanesStart := int64(saStart) + int64(fixed)
	for wi := 0; wi < workers; wi++ {
		tr.SpanBetween(a.saSpan, "ckpt/worker", lanesStart, lanesStart+int64(busy[wi]),
			trace.I64("worker", int64(wi)),
			trace.I64("procs", laneProcs[wi]),
			trace.I64("bytes", laneBytes[wi]),
			trace.I64("encode_ns", int64(busy[wi])),
			trace.I64("wait_ns", int64(longest-busy[wi])))
	}
}

// metaArrived is manager step M2/M3: collect meta-data; once all have
// reported, send 'continue' to everyone (the single synchronization).
func (op *ckptOp) metaArrived() {
	if op.aborted {
		return
	}
	op.metas++
	if op.metas < len(op.agents) || op.contSent {
		return
	}
	op.contSent = true
	op.m.tr.Instant(op.span, "ckpt/meta-sync", trace.I64("agents", int64(len(op.agents))))
	op.m.notify(PhaseMetaSync)
	op.plane.Broadcast("continue", nil, func(i int) {
		a := op.agents[i]
		a.contRecvd = true
		if op.opts.NaiveSync && !a.saDone && a.img == nil {
			a.standalone()
			return
		}
		a.maybeFinish()
	})
}

// maybeFinish is agent steps 3a/4/4a: the agent completes only after
// both its standalone checkpoint is done and 'continue' has arrived;
// then it unblocks (or tears down) its pod and reports done.
func (a *ckptAgent) maybeFinish() {
	if a.op.aborted || a.finished || !a.saDone || !a.contRecvd {
		return
	}
	// A manager or peer-node crash after the synchronization point must
	// still abort gracefully — without this check a pod would be
	// destroyed (Migrate mode) on the say-so of a dead manager.
	if a.op.checkFailure() {
		return
	}
	a.finished = true
	w := a.op.m.w
	costs := w.Costs
	if a.op.opts.SnapshotFS && a.op.result.FSSnapshot == nil {
		// File-system snapshot immediately prior to reactivating the
		// first pod; the shared FS is frozen consistently because every
		// pod is still suspended at this point.
		a.op.result.FSSnapshot = a.op.m.fs.Snapshot()
	}
	// The downtime window closes here: the pod resumes (or is torn
	// down) at the current instant in either mode.
	a.window = sim.Duration(w.Now() - a.suspendedAt)
	a.op.m.reg.Histogram("ckpt_suspend_window_ns").Observe(int64(a.window))
	var cost sim.Duration
	switch a.op.opts.Mode {
	case Snapshot:
		a.pod.UnblockNetwork()
		a.pod.Resume()
		cost = costs.FilterRule + costs.SignalDeliver*sim.Duration(len(a.pod.Procs()))
		a.op.m.tr.Instant(a.span, "ckpt/resume", trace.I64("suspend_window_ns", int64(a.window)))
	case Migrate:
		a.pod.Destroy()
		cost = sim.Millisecond
		a.op.m.tr.Instant(a.span, "ckpt/teardown", trace.I64("suspend_window_ns", int64(a.window)))
	}
	// 4: report 'done'.
	a.op.doneG.Report(a.idx, cost)
}

// doneArrived is manager step M4: collect completion reports.
func (op *ckptOp) doneArrived(a *ckptAgent) {
	if op.aborted {
		return
	}
	// The manager collecting done-reports may itself have crashed
	// between the meta-data sync and this point; agents then abort and
	// resume their pods instead of reporting to nobody.
	if op.checkFailure() {
		return
	}
	a2 := a
	total := sim.Duration(op.m.w.Now() - a2.began)
	a.span.End(trace.I64("image_bytes", a.img.Bytes()),
		trace.I64("wire_bytes", a.stats.Bytes))
	op.m.reg.Histogram("ckpt_agent_total_ns").Observe(int64(total))
	op.result.Stats.Agents = append(op.result.Stats.Agents, AgentStats{
		Pod:                a.pod.Name(),
		Suspend:            a.suspend,
		NetCkpt:            a.netTime,
		Standalone:         a.saTime,
		Total:              total,
		ImageBytes:         a.img.Bytes(),
		NetBytes:           a.netBytes,
		NetQueueLen:        a.queueLen,
		WireBytes:          a.stats.Bytes,
		PeakBuffered:       a.stats.Peak,
		Incremental:        a.pend != nil && !a.pend.Full(),
		SuspendWindow:      a.window,
		PrecopyRounds:      a.preRounds,
		PrecopyResentBytes: a.preResent,
	})
	if a.pre != nil {
		op.m.reg.Counter("ckpt_precopy_rounds_total").Add(int64(a.preRounds))
		op.m.reg.Counter("ckpt_precopy_resent_bytes_total").Add(a.preResent)
	}
	op.result.Images[a.img.VIP] = a.img
	op.dones++
	if op.dones < len(op.agents) {
		return
	}
	// The whole coordinated operation succeeded: commit the incremental
	// trackers now, so an abort anywhere above leaves every chain
	// anchored at its last durable generation.
	for _, ag := range op.agents {
		if ag.pend != nil {
			ag.pend.Commit()
		}
	}
	if op.opts.Redirect && op.opts.Mode == Migrate {
		nets := make(map[netstack.IP]*netckpt.NetImage, len(op.result.Images))
		for ip, img := range op.result.Images {
			nets[ip] = img.Net
		}
		netckpt.ApplyRedirect(nets)
	}
	op.result.Stats.Total = sim.Duration(op.m.w.Now() - op.start)
	var lastStart sim.Time
	for _, ag := range op.agents {
		if ag.began > lastStart {
			lastStart = ag.began
		}
	}
	op.result.Stats.CoordBarrier = sim.Duration(lastStart - op.start)
	op.result.Stats.Coord = op.plane.Stats()
	op.m.w.Cancel(op.watchdog)
	if op.opts.FlushTo != "" {
		if !op.plane.Flat() {
			op.flushStaggered()
			return
		}
		// Flush after resume; charged to the SAN, not to checkpoint time.
		// Full generations write <pod>.img, deltas write <pod>.delta.
		// Pre-copy agents flushed their base (<pod>.img) and round
		// records (<pod>.rNN.delta) live; only the residual (<pod>.delta)
		// lands here. Records stream chunk by chunk into the manager's
		// store — at no point does a flushed record exist as one
		// contiguous buffer.
		for _, ag := range op.agents {
			op.flushAgent(ag)
		}
	}
	op.finishOK()
}

// flushAgent streams one agent's record into the manager's store.
func (op *ckptOp) flushAgent(ag *ckptAgent) {
	ext := "img"
	if (ag.pend != nil && !ag.pend.Full()) || ag.pre != nil {
		ext = "delta"
	}
	path := fmt.Sprintf("%s/%s.%s", op.opts.FlushTo, ag.img.PodName, ext)
	fSpan := op.m.tr.Start(op.span, "store/flush",
		trace.Track(ag.img.PodName), trace.Str("path", path))
	if err := op.flushRecord(path, ag); err != nil {
		op.result.Err = err
		fSpan.End(trace.Str("err", err.Error()))
	} else {
		fSpan.End(trace.I64("bytes", ag.stats.Bytes))
	}
}

// flushStaggered flushes each top-level subtree's records in its own
// wave, consecutive waves separated by the previous wave's modeled SAN
// time — concurrent flush bandwidth is bounded by one subtree instead
// of all N pods hitting the store at once. The result is delivered
// after the last wave, matching the flat path's records-durable-first
// semantics. Wave order (root children ascending, agents in member
// order within a wave) is deterministic.
func (op *ckptOp) flushStaggered() {
	topo := op.plane.Topology()
	costs := op.m.w.Costs
	var waves [][]*ckptAgent
	for _, rc := range topo.RootChildren() {
		var wave []*ckptAgent
		for _, ag := range op.agents {
			if topo.RootAncestor(ag.idx) == rc {
				wave = append(wave, ag)
			}
		}
		if len(wave) > 0 {
			waves = append(waves, wave)
		}
	}
	if len(waves) == 0 {
		op.finishOK()
		return
	}
	var offset sim.Duration
	for i, wave := range waves {
		wave := wave
		last := i == len(waves)-1
		op.m.w.After(offset, func() {
			op.m.tr.Instant(op.span, "ckpt/flush-wave",
				trace.I64("agents", int64(len(wave))))
			for _, ag := range wave {
				op.flushAgent(ag)
			}
			if last {
				op.finishOK()
			}
		})
		var bytes int64
		for _, ag := range wave {
			bytes += costs.EffImageBytes(ag.stats.Bytes)
		}
		offset += costs.DiskTime(bytes)
	}
}

// finishOK closes the operation: per-level barrier spans (tree mode
// only — a flat plane emits nothing, keeping legacy traces
// byte-identical), the coordinated span, counters, the phase
// notification, and the caller's callback.
func (op *ckptOp) finishOK() {
	op.m.dropOp(op)
	op.plane.EmitLevelSpans(op.m.tr, op.span)
	op.span.End(trace.Str("outcome", "ok"),
		trace.I64("total_ns", int64(op.result.Stats.Total)))
	op.m.reg.Counter("ckpt_ops_total").Add(1)
	op.m.notify(PhaseCheckpointDone)
	op.onDone(op.result)
}

// flushRecord streams one agent's record into the manager's store.
func (op *ckptOp) flushRecord(path string, ag *ckptAgent) error {
	wc, err := op.m.store.Create(path)
	if err != nil {
		return err
	}
	switch {
	case ag.pre != nil:
		recs := ag.pre.Records()
		_, err = recs[len(recs)-1].Stream(wc)
	case ag.pend != nil:
		_, err = ag.pend.Stream(wc)
	default:
		_, err = ag.img.EncodeStream(wc)
	}
	if err != nil {
		wc.Close()
		return err
	}
	return wc.Close()
}

// Placement names the target node for one pod image.
type Placement struct {
	Image   *ckpt.Image
	PodName string // name for the restored pod
	Node    *vos.Node
	// Delay postpones this agent's restart (e.g. while its image is
	// still streaming in during a direct migration).
	Delay sim.Duration
	// Warm marks a standby promotion: the target node already holds the
	// image's state in pre-built shadow form, so the agent skips pod
	// creation and the bulk restore, paying only the fixed activation
	// cost (plus the real network-state recovery, which no placement
	// escapes).
	Warm bool
}

// RestartStats aggregates a coordinated restart.
type RestartStats struct {
	Total  sim.Duration
	Agents []RestartAgentStats
	// Coord is the control-plane accounting of the operation (see
	// CheckpointStats.Coord).
	Coord coord.Stats
}

// RestartAgentStats is one agent's restart breakdown.
type RestartAgentStats struct {
	Pod        string
	NetRestore sim.Duration // connectivity recovery + queue restore
	Standalone sim.Duration // standalone restart (dominates, per §6)
	Total      sim.Duration
}

// RestartResult reports the restored pods and measurements.
type RestartResult struct {
	Pods  []*pod.Pod
	Stats RestartStats
	Err   error
}

// Restart coordinates a restart of a checkpointed application onto the
// given placement (generally different nodes, possibly a different
// number of them). remap optionally rewrites virtual addresses for a
// target cluster on different subnets.
func (m *Manager) Restart(placements []Placement, remap map[netstack.IP]netstack.IP, onDone func(*RestartResult)) {
	if len(placements) == 0 {
		onDone(&RestartResult{Err: errors.New("core: no placements to restart")})
		return
	}
	// Manager step R1: derive the schedule from the merged meta-data.
	nets := make(map[netstack.IP]*netckpt.NetImage, len(placements))
	for _, pl := range placements {
		if remap != nil {
			pl.Image.Remap(remap)
		}
		nets[pl.Image.VIP] = pl.Image.Net
	}
	plans, err := netckpt.PlanRestart(nets)
	if err != nil {
		onDone(&RestartResult{Err: err})
		return
	}
	op := &restartOp{
		m:       m,
		start:   m.w.Now(),
		total:   len(placements),
		result:  &RestartResult{},
		onDone:  onDone,
		plane:   m.newPlane(len(placements), nil),
		reports: make([]restartReport, len(placements)),
	}
	op.doneG = op.plane.Gather("done", func(i int) {
		r := op.reports[i]
		op.agentDone(r.name, r.netT, r.saT, r.total, r.pod)
	})
	// Routing for the restored virtual addresses is in place before any
	// agent starts, so early reconnection attempts are refused (and
	// promptly retried) rather than lost.
	for _, pl := range placements {
		m.nw.Claim(pl.Image.VIP)
		op.vips = append(op.vips, pl.Image.VIP)
	}
	// Watchdog: a restart agent that never completes (target node
	// crashed mid-restore, lost control message) aborts the operation
	// and cleans up instead of wedging the claimed addresses forever.
	op.watchdog = m.w.After(DefaultRestartTimeout, func() {
		op.fail(fmt.Errorf("%w: restart stalled for %v", ErrTimeout, DefaultRestartTimeout))
	})
	op.span = m.tr.Start(nil, "restart/coordinated", trace.Track("manager"),
		trace.I64("pods", int64(len(placements))),
		trace.I64("remapped", b2i(remap != nil)))
	m.notify(PhaseRestartStart)
	// R1: send 'restart' plus modified meta-data to each agent. The
	// per-placement Delay (an image still streaming in during a direct
	// migration) rides on the member's final hop.
	op.plane.Broadcast("restart",
		func(i int) sim.Duration { return placements[i].Delay },
		func(i int) {
			pl := placements[i]
			op.runAgent(i, pl, plans[pl.Image.VIP])
		})
}

// restartReport holds one agent's completion report until the batched
// fan-in delivers it to the root.
type restartReport struct {
	name      string
	netT, saT sim.Duration
	total     sim.Duration
	pod       *pod.Pod
}

type restartOp struct {
	m        *Manager
	start    sim.Time
	total    int
	dones    int
	aborted  bool
	vips     []netstack.IP // claimed routing entries, released on abort
	created  []*pod.Pod    // pods built so far, destroyed on abort
	watchdog sim.EventID
	result   *RestartResult
	onDone   func(*RestartResult)
	span     *trace.Span
	plane    *coord.Plane
	doneG    *coord.Gather
	reports  []restartReport
}

// runAgent executes the agent-side restart of Figure 3: create a pod,
// recover connectivity, restore network state, standalone restart,
// report done. The pod resumes as soon as its own restart concludes —
// no cross-agent barrier.
func (op *restartOp) runAgent(idx int, pl Placement, plan *netckpt.EndpointPlan) {
	if op.aborted || op.checkFailure(pl.Node) {
		return
	}
	w := op.m.w
	costs := w.Costs
	began := w.Now()
	agSpan := op.m.tr.Start(op.span, "restart/agent", trace.Track(pl.PodName),
		trace.Str("node", pl.Node.Name()), trace.I64("warm", b2i(pl.Warm)))
	// Pod creation cost precedes connectivity recovery. A warm placement
	// activates a pre-built standby shadow, so the namespace already
	// exists and no creation time is charged.
	create := costs.PodCreate
	if pl.Warm {
		create = 0
	}
	w.After(create, func() {
		if op.aborted || op.checkFailure(pl.Node) {
			return
		}
		if !pl.Warm {
			op.m.tr.SpanBetween(agSpan, "restart/pod-create", int64(began), int64(w.Now()))
		}
		netStart := w.Now()
		netSpan := op.m.tr.Start(agSpan, "restart/net-restore",
			trace.I64("entries", int64(len(plan.Entries))))
		np := ckpt.RestorePod(pl.Image, pl.PodName, pl.Node, op.m.nw, op.m.fs, plan,
			func(np *pod.Pod, err error) {
				if err != nil {
					op.fail(err)
					return
				}
				if op.aborted || op.checkFailure(pl.Node) {
					return
				}
				// Network restore time includes the real (simulated)
				// reconnection exchanges plus the agent-side
				// per-connection cost and the queue-restore copy.
				queueBytes := pl.Image.Net.QueueBytes()
				queueMsgs := pl.Image.Net.QueueMsgs()
				queueCopy := costs.MemCopyTime(queueBytes) +
					costs.ConnSetup*sim.Duration(len(plan.Entries))
				netTime := sim.Duration(w.Now()-netStart) + queueCopy
				netSpan.End(trace.I64("queue_bytes", queueBytes),
					trace.I64("queue_msgs", queueMsgs),
					trace.I64("queue_copy_ns", int64(queueCopy)))
				op.m.reg.Counter("netstack_reinjected_msgs_total").Add(queueMsgs)
				op.m.reg.Counter("netstack_reinjected_bytes_total").Add(queueBytes)
				// Standalone restart cost: fixed + restore bandwidth
				// (divided by the decode/rebuild parallelism) +
				// per-process creation. A warm placement's state is
				// already resident (the standby paid the restore when it
				// applied each replicated record), so only the fixed
				// activation cost remains.
				bytes := costs.EffImageBytes(pl.Image.Bytes())
				var saCost sim.Duration
				if pl.Warm {
					saCost = w.Jitter(costs.PromoteFixed, 0.25)
				} else {
					saCost = w.Jitter(costs.RestartFixed, 0.25) +
						costs.RestoreTime(bytes)/parSpeedup(effWorkers(op.m.workers), len(pl.Image.Procs)) +
						costs.ProcCreate*sim.Duration(len(pl.Image.Procs))
				}
				saStart := w.Now()
				w.After(queueCopy+saCost, func() {
					if op.aborted || op.checkFailure(pl.Node) {
						return
					}
					op.m.tr.SpanBetween(agSpan, "restart/standalone",
						int64(saStart)+int64(queueCopy), int64(w.Now()),
						trace.I64("bytes", pl.Image.Bytes()),
						trace.I64("procs", int64(len(pl.Image.Procs))))
					np.Resume() // no further delay, per the paper
					agSpan.End()
					op.m.reg.Histogram("restart_agent_total_ns").Observe(int64(w.Now() - began))
					op.reports[idx] = restartReport{
						name: pl.PodName, netT: netTime, saT: saCost,
						total: sim.Duration(w.Now() - began), pod: np,
					}
					op.doneG.Report(idx, 0)
				})
			})
		if np != nil {
			if op.aborted {
				// The restore callback may run synchronously and abort
				// the operation before we get here; don't leak the pod.
				np.Destroy()
			} else {
				op.created = append(op.created, np)
			}
		}
	})
}

// checkFailure aborts the restart when the manager client has crashed
// (found by the chaos fuzzer: restarts used to ignore manager failure,
// so a dead coordinator could still orchestrate a full failover) or
// when a target node has crashed mid-operation (the agent on it can no
// longer make progress).
func (op *restartOp) checkFailure(n *vos.Node) bool {
	if op.m.failed {
		op.fail(ErrManagerFailure)
		return true
	}
	if n.Failed() {
		op.fail(fmt.Errorf("%w: node %s", ErrAgentFailure, n.Name()))
		return true
	}
	return false
}

// fail aborts the whole restart and undoes its side effects: every pod
// built so far (including ones whose agents already reported done) is
// destroyed and every claimed virtual address is released, so the
// network and nodes remain reusable for a retry from the same images.
func (op *restartOp) fail(err error) {
	if op.aborted {
		return
	}
	op.aborted = true
	op.m.w.Cancel(op.watchdog)
	for _, p := range op.created {
		p.Destroy()
	}
	for _, ip := range op.vips {
		op.m.nw.Release(ip)
	}
	op.plane.AccountAbort()
	op.m.tr.Instant(op.span, "restart/abort", trace.Str("err", err.Error()))
	op.span.End(trace.Str("outcome", "aborted"))
	op.m.reg.Counter("restart_aborts_total").Add(1)
	op.result.Pods = nil
	op.result.Err = fmt.Errorf("%w: %w", ErrAborted, err)
	op.onDone(op.result)
}

func (op *restartOp) agentDone(name string, netT, saT, total sim.Duration, np *pod.Pod) {
	if op.aborted {
		return
	}
	op.result.Pods = append(op.result.Pods, np)
	op.result.Stats.Agents = append(op.result.Stats.Agents, RestartAgentStats{
		Pod: name, NetRestore: netT, Standalone: saT, Total: total,
	})
	op.dones++
	if op.dones == op.total {
		op.result.Stats.Total = sim.Duration(op.m.w.Now() - op.start)
		op.result.Stats.Coord = op.plane.Stats()
		op.m.w.Cancel(op.watchdog)
		op.plane.EmitLevelSpans(op.m.tr, op.span)
		op.span.End(trace.Str("outcome", "ok"),
			trace.I64("total_ns", int64(op.result.Stats.Total)))
		op.m.reg.Counter("restart_ops_total").Add(1)
		op.m.notify(PhaseRestartDone)
		op.onDone(op.result)
	}
}
