package core

import (
	"fmt"

	"zapc/internal/ckpt"

	"zapc/internal/netstack"
	"zapc/internal/pod"
	"zapc/internal/sim"
	"zapc/internal/vos"
)

// MigrateStats aggregates a direct migration: coordinated checkpoint,
// node-to-node image streaming (no intermediate storage), and
// coordinated restart.
type MigrateStats struct {
	Ckpt      CheckpointStats
	Restart   RestartStats
	Transfer  sim.Duration // slowest image stream
	Total     sim.Duration
	WireBytes int64 // bytes streamed between agents
}

// MigrateResult reports the restored pods and measurements.
type MigrateResult struct {
	Pods  []*pod.Pod
	Stats MigrateStats
	Err   error
}

// Migrate moves a running distributed application from its current
// nodes onto the target nodes by checkpointing every pod, streaming
// each image directly to its receiving agent (the paper's
// no-intermediate-storage path), and restarting there. The application
// may move from N nodes to M nodes: pods are placed round-robin across
// the targets. redirect enables the §5 send-queue optimization.
func (m *Manager) Migrate(pods []*pod.Pod, targets []*vos.Node, redirect bool,
	remap map[netstack.IP]netstack.IP, onDone func(*MigrateResult)) {

	if len(targets) == 0 {
		onDone(&MigrateResult{Err: fmt.Errorf("core: no target nodes")})
		return
	}
	start := m.w.Now()
	names := make([]string, len(pods))
	for i, p := range pods {
		names[i] = p.Name()
	}
	m.Checkpoint(pods, Options{Mode: Migrate, Redirect: redirect}, func(cr *CheckpointResult) {
		if cr.Err != nil {
			onDone(&MigrateResult{Err: cr.Err})
			return
		}
		res := &MigrateResult{}
		res.Stats.Ckpt = cr.Stats
		// Stream each image to its target agent; streams run in
		// parallel on distinct links through the switch.
		placements := make([]Placement, 0, len(cr.Images))
		var maxXfer sim.Duration
		i := 0
		for _, a := range cr.Stats.Agents {
			// Preserve the original pod order for placement.
			var img = cr.imageByName(a.Pod)
			if img == nil {
				onDone(&MigrateResult{Err: fmt.Errorf("core: image for pod %s missing", a.Pod)})
				return
			}
			bytes := m.w.Costs.EffImageBytes(img.Bytes())
			xfer := m.w.Costs.NetLatency + m.w.Costs.NetTransferTime(bytes)
			if xfer > maxXfer {
				maxXfer = xfer
			}
			res.Stats.WireBytes += bytes
			placements = append(placements, Placement{
				Image:   img,
				PodName: a.Pod,
				Node:    targets[i%len(targets)],
				Delay:   xfer,
			})
			i++
		}
		res.Stats.Transfer = maxXfer
		m.Restart(placements, remap, func(rr *RestartResult) {
			if rr.Err != nil {
				res.Err = rr.Err
				onDone(res)
				return
			}
			res.Pods = rr.Pods
			res.Stats.Restart = rr.Stats
			res.Stats.Total = sim.Duration(m.w.Now() - start)
			onDone(res)
		})
	})
}

func (r *CheckpointResult) imageByName(name string) *ckpt.Image {
	for _, img := range r.Images {
		if img.PodName == name {
			return img
		}
	}
	return nil
}
