package core

import (
	"errors"
	"testing"

	"zapc/internal/pod"
	"zapc/internal/sim"
)

func TestManagerFailureAborts(t *testing.T) {
	h := mkHarness(t, 2)
	podA, podB, pi, _ := h.launchPair(t, 1<<30)
	h.drive(t, func() bool { return pi.Val > 5 })
	var res *CheckpointResult
	h.mgr.Checkpoint([]*pod.Pod{podA, podB}, Options{Mode: Snapshot}, func(r *CheckpointResult) { res = r })
	h.mgr.Fail()
	h.drive(t, func() bool { return res != nil })
	if !errors.Is(res.Err, ErrManagerFailure) {
		t.Fatalf("err = %v", res.Err)
	}
	// Both pods must have been resumed.
	for _, p := range []*pod.Pod{podA, podB} {
		if p.NetworkBlocked() {
			t.Fatalf("pod %s network still blocked after manager failure", p.Name())
		}
		if proc, ok := p.Lookup(1); ok && proc.Stopped() {
			t.Fatalf("pod %s still stopped after manager failure", p.Name())
		}
	}
}

func TestSnapshotFSCapturesConsistentImage(t *testing.T) {
	h := mkHarness(t, 2)
	podA, podB, pi, _ := h.launchPair(t, 1<<30)
	h.drive(t, func() bool { return pi.Val > 5 })
	// A file written before the checkpoint is in the snapshot; one
	// written after is not.
	h.fs.WriteFile("app/before", []byte("pre-checkpoint"))
	var res *CheckpointResult
	h.mgr.Checkpoint([]*pod.Pod{podA, podB}, Options{Mode: Snapshot, SnapshotFS: true},
		func(r *CheckpointResult) { res = r })
	h.drive(t, func() bool { return res != nil })
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.FSSnapshot == nil {
		t.Fatal("no filesystem snapshot taken")
	}
	h.fs.WriteFile("app/after", []byte("post-checkpoint"))
	h.fs.WriteFile("app/before", []byte("mutated"))
	got, err := res.FSSnapshot.ReadFile("app/before")
	if err != nil || string(got) != "pre-checkpoint" {
		t.Fatalf("snapshot content = %q, %v", got, err)
	}
	if res.FSSnapshot.Exists("app/after") {
		t.Fatal("snapshot sees post-checkpoint writes")
	}
}

func TestSnapshotWithoutFSOption(t *testing.T) {
	h := mkHarness(t, 2)
	podA, podB, pi, _ := h.launchPair(t, 1<<30)
	h.drive(t, func() bool { return pi.Val > 5 })
	var res *CheckpointResult
	h.mgr.Checkpoint([]*pod.Pod{podA, podB}, Options{Mode: Snapshot}, func(r *CheckpointResult) { res = r })
	h.drive(t, func() bool { return res != nil })
	if res.FSSnapshot != nil {
		t.Fatal("snapshot taken without SnapshotFS")
	}
}

func TestChainedMigrations(t *testing.T) {
	// Migrate the same application twice in a row across disjoint node
	// sets; it must still complete exactly.
	h := mkHarness(t, 6)
	podA, podB, pi, _ := h.launchPair(t, 200)
	h.drive(t, func() bool { return pi.Val > 30 })

	var res1 *MigrateResult
	h.mgr.Migrate([]*pod.Pod{podA, podB}, h.nodes[2:4], false, nil,
		func(r *MigrateResult) { res1 = r })
	h.drive(t, func() bool { return res1 != nil })
	if res1.Err != nil {
		t.Fatal(res1.Err)
	}
	var npi *pinger
	var npo *ponger
	rebind := func(pods []*pod.Pod) {
		for _, np := range pods {
			proc, _ := np.Lookup(1)
			switch pg := proc.Prog.(type) {
			case *pinger:
				npi = pg
			case *ponger:
				npo = pg
			}
		}
	}
	rebind(res1.Pods)
	h.drive(t, func() bool { return npi.Val > 80 })

	var res2 *MigrateResult
	h.mgr.Migrate(res1.Pods, h.nodes[4:6], true, nil,
		func(r *MigrateResult) { res2 = r })
	h.drive(t, func() bool { return res2 != nil })
	if res2.Err != nil {
		t.Fatal(res2.Err)
	}
	rebind(res2.Pods)
	h.drive(t, func() bool { return npi.Done && npo.Done })
	expectSeen(t, npi.Seen, 200)
	expectSeen(t, npo.Seen, 200)
}

func TestEmptyOperationsRejected(t *testing.T) {
	h := mkHarness(t, 1)
	var cres *CheckpointResult
	h.mgr.Checkpoint(nil, Options{}, func(r *CheckpointResult) { cres = r })
	if cres == nil || cres.Err == nil {
		t.Fatal("empty checkpoint accepted")
	}
	var rres *RestartResult
	h.mgr.Restart(nil, nil, func(r *RestartResult) { rres = r })
	if rres == nil || rres.Err == nil {
		t.Fatal("empty restart accepted")
	}
}

func TestCheckpointTimingBreakdownSane(t *testing.T) {
	h := mkHarness(t, 2)
	podA, podB, pi, _ := h.launchPair(t, 1<<30)
	h.drive(t, func() bool { return pi.Val > 5 })
	var res *CheckpointResult
	h.mgr.Checkpoint([]*pod.Pod{podA, podB}, Options{Mode: Snapshot}, func(r *CheckpointResult) { res = r })
	h.drive(t, func() bool { return res != nil })
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	for _, a := range res.Stats.Agents {
		if a.Suspend < 0 || a.NetCkpt <= 0 || a.Standalone <= 0 {
			t.Fatalf("agent %s breakdown: %+v", a.Pod, a)
		}
		sum := a.Suspend + a.NetCkpt + a.Standalone
		if a.Total < sum-sim.Millisecond {
			t.Fatalf("agent %s: total %v < parts %v", a.Pod, a.Total, sum)
		}
	}
	if res.Stats.Total < res.Stats.Agents[0].Total {
		t.Fatal("manager total below an agent total")
	}
}
