package sim

import "errors"

// Watchdog errors. They are distinct named conditions so a harness can
// tell "the scenario ran out of simulated time" (a hang: some component
// is waiting forever) from "the event queue wedged at one instant" (a
// livelock: events keep firing without the clock advancing).
var (
	// ErrDeadline is returned when the simulated clock passes the
	// watchdog deadline before the condition holds.
	ErrDeadline = errors.New("sim: watchdog deadline exceeded")
	// ErrLivelock is returned when more than MaxStalled events fire
	// without the simulated clock advancing — an event cascade that
	// would otherwise spin the host CPU forever at one instant.
	ErrLivelock = errors.New("sim: watchdog livelock: event cascade without clock progress")
	// ErrDrained is returned when the event queue empties before the
	// condition holds — the system silently stopped doing anything.
	ErrDrained = errors.New("sim: watchdog: event queue drained before condition")
)

// DefaultMaxStalled bounds same-instant event cascades. No legitimate
// path in the simulation fires anywhere near this many events without
// the clock moving; a cascade that does is a scheduling loop.
const DefaultMaxStalled = 1 << 20

// Watchdog drives a World toward a condition while enforcing that the
// run terminates: the simulated clock must not pass Deadline, the queue
// must not drain early, and the clock must keep advancing. It is the
// hang oracle of the chaos harness — every fault-injected run finishes
// with a verdict, never a wedged test process.
type Watchdog struct {
	W *World
	// Deadline is the simulated-time budget, measured from the moment
	// Drive is called.
	Deadline Duration
	// MaxStalled bounds events fired at a single instant
	// (0 selects DefaultMaxStalled).
	MaxStalled int
}

// Drive steps the world until cond holds or a watchdog trips, returning
// nil on success or one of ErrDeadline, ErrLivelock, ErrDrained.
func (wd Watchdog) Drive(cond func() bool) error {
	limit := wd.W.Now() + Time(wd.Deadline)
	maxStalled := wd.MaxStalled
	if maxStalled <= 0 {
		maxStalled = DefaultMaxStalled
	}
	stalled := 0
	last := wd.W.Now()
	for !cond() {
		if wd.W.Now() > limit {
			return ErrDeadline
		}
		if !wd.W.Step() {
			if cond() {
				return nil
			}
			return ErrDrained
		}
		if now := wd.W.Now(); now > last {
			last = now
			stalled = 0
		} else {
			stalled++
			if stalled > maxStalled {
				return ErrLivelock
			}
		}
	}
	return nil
}
