package sim

import (
	"errors"
	"testing"
)

func TestWatchdogCondHolds(t *testing.T) {
	w := NewWorld(1)
	done := false
	w.After(10*Millisecond, func() { done = true })
	wd := Watchdog{W: w, Deadline: Second}
	if err := wd.Drive(func() bool { return done }); err != nil {
		t.Fatalf("Drive: %v", err)
	}
	if w.Now() != Time(10*Millisecond) {
		t.Fatalf("clock at %v, want 10ms", w.Now())
	}
}

func TestWatchdogDeadline(t *testing.T) {
	w := NewWorld(1)
	// A self-re-arming timer that never satisfies the condition: the
	// clock advances forever, so only the deadline stops the run.
	var tick func()
	tick = func() { w.After(Millisecond, tick) }
	w.After(Millisecond, tick)
	wd := Watchdog{W: w, Deadline: 50 * Millisecond}
	err := wd.Drive(func() bool { return false })
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
}

func TestWatchdogLivelock(t *testing.T) {
	w := NewWorld(1)
	// An event that reschedules itself with zero delay: the queue never
	// drains and the clock never advances.
	var spin func()
	spin = func() { w.After(0, spin) }
	w.After(0, spin)
	wd := Watchdog{W: w, Deadline: Second, MaxStalled: 1000}
	err := wd.Drive(func() bool { return false })
	if !errors.Is(err, ErrLivelock) {
		t.Fatalf("err = %v, want ErrLivelock", err)
	}
}

func TestWatchdogDrained(t *testing.T) {
	w := NewWorld(1)
	w.After(Millisecond, func() {})
	wd := Watchdog{W: w, Deadline: Second}
	err := wd.Drive(func() bool { return false })
	if !errors.Is(err, ErrDrained) {
		t.Fatalf("err = %v, want ErrDrained", err)
	}
}

func TestWatchdogDrainedButCondHolds(t *testing.T) {
	w := NewWorld(1)
	done := false
	w.After(Millisecond, func() { done = true })
	wd := Watchdog{W: w, Deadline: Second}
	// The final event satisfies the condition exactly as the queue
	// drains; that is success, not ErrDrained.
	if err := wd.Drive(func() bool { return done }); err != nil {
		t.Fatalf("Drive: %v", err)
	}
}
