// Package sim provides the discrete-event simulation kernel underneath the
// ZapC reproduction: a virtual clock, a deterministic event queue, a seeded
// random source, and the calibrated hardware cost model used to convert
// byte counts and message exchanges into simulated durations.
//
// Everything in the virtual cluster — CPU scheduling, packet delivery,
// checkpoint writes — advances by scheduling events on a single World. The
// simulation is fully deterministic for a given seed and event program,
// which is what makes distributed checkpoint/restart testable: a run that
// is checkpointed and restarted must produce output identical to an
// uninterrupted run.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in simulated time, in nanoseconds since world creation.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration int64

// Handy duration units (nanosecond-based, mirroring package time).
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Std converts a simulated duration to a time.Duration for printing.
func (d Duration) Std() time.Duration { return time.Duration(d) }

func (d Duration) String() string { return time.Duration(d).String() }

// String formats a simulated timestamp like a duration since t=0.
func (t Time) String() string { return time.Duration(t).String() }

type event struct {
	when Time
	seq  uint64 // tie-break so simultaneous events run in schedule order
	fn   func()
	idx  int
	dead bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// EventID identifies a scheduled event so it can be cancelled (for example
// a retransmission timer that is disarmed by an arriving ACK).
type EventID struct{ ev *event }

// World is a discrete-event simulation. Create one with NewWorld. A World
// is not safe for concurrent use: all activity happens inside event
// callbacks run by Run/Step on a single goroutine.
type World struct {
	now Time
	pq  eventHeap
	seq uint64
	rng *rand.Rand

	// Costs is the hardware cost model used by the rest of the system.
	Costs Costs
}

// NewWorld returns a world at time zero with the given deterministic seed
// and the default 2005-era cost model.
func NewWorld(seed int64) *World {
	return &World{rng: rand.New(rand.NewSource(seed)), Costs: DefaultCosts()}
}

// Now returns the current simulated time.
func (w *World) Now() Time { return w.now }

// Rand returns the world's deterministic random source.
func (w *World) Rand() *rand.Rand { return w.rng }

// After schedules fn to run d from now. Negative delays run "now" (but
// still via the queue, preserving run-to-completion semantics).
func (w *World) After(d Duration, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	ev := &event{when: w.now + Time(d), seq: w.seq, fn: fn}
	w.seq++
	heap.Push(&w.pq, ev)
	return EventID{ev: ev}
}

// At schedules fn at absolute time t (clamped to now).
func (w *World) At(t Time, fn func()) EventID {
	if t < w.now {
		t = w.now
	}
	return w.After(Duration(t-w.now), fn)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (w *World) Cancel(id EventID) {
	if id.ev == nil || id.ev.dead {
		return
	}
	id.ev.dead = true
}

// Step runs the next pending event, advancing the clock. It reports false
// when the queue is empty.
func (w *World) Step() bool {
	for len(w.pq) > 0 {
		ev := heap.Pop(&w.pq).(*event)
		if ev.dead {
			continue
		}
		if ev.when > w.now {
			w.now = ev.when
		}
		ev.dead = true
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains.
func (w *World) Run() {
	for w.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then sets the clock
// to deadline if it has not yet passed it.
func (w *World) RunUntil(deadline Time) {
	for len(w.pq) > 0 {
		// Find the next live event without firing dead ones.
		ev := w.pq[0]
		if ev.dead {
			heap.Pop(&w.pq)
			continue
		}
		if ev.when > deadline {
			break
		}
		w.Step()
	}
	if w.now < deadline {
		w.now = deadline
	}
}

// RunWhile executes events while cond() holds and events remain.
func (w *World) RunWhile(cond func() bool) {
	for cond() && w.Step() {
	}
}

// Pending reports the number of live scheduled events.
func (w *World) Pending() int {
	n := 0
	for _, ev := range w.pq {
		if !ev.dead {
			n++
		}
	}
	return n
}

// Jitter returns d scaled by a uniform factor in [1-frac, 1+frac], using
// the world's deterministic randomness. It is used to model run-to-run
// variation in checkpoint times (the paper reports 10-60% stddev).
func (w *World) Jitter(d Duration, frac float64) Duration {
	if frac <= 0 {
		return d
	}
	f := 1 + frac*(2*w.rng.Float64()-1)
	return Duration(float64(d) * f)
}

// Costs is the calibrated hardware cost model. The defaults approximate the
// paper's testbed: an IBM HS20 BladeCenter with dual 3.06 GHz Xeons,
// Gigabit Ethernet, and a Fibre Channel SAN (2005-era parts). All
// conversions from work to simulated time flow through this struct so that
// experiments can perturb a single knob.
type Costs struct {
	// MemBandwidth is the rate at which a checkpoint image is written to
	// (or serialized from) memory, bytes per second.
	MemBandwidth float64
	// RestoreBandwidth is the rate at which an image is reinstated into a
	// fresh pod. Restores run slower than saves (allocation, page faults).
	RestoreBandwidth float64
	// DiskBandwidth models the shared SAN, bytes/second (used only when a
	// checkpoint is flushed to storage, which the paper excludes from the
	// reported checkpoint time).
	DiskBandwidth float64
	// NetLatency is the one-way wire+switch latency of a LAN hop.
	NetLatency Duration
	// NetBandwidth is the link rate in bytes/second (GbE ~ 125 MB/s).
	NetBandwidth float64
	// CtrlLatency is the one-way latency of a Manager<->Agent control
	// message (TCP over the same LAN, including protocol stack overhead).
	CtrlLatency Duration
	// CtrlPerMsg is the sender-side occupancy of queuing one control
	// message: a coordinator pushing k messages back to back delivers
	// the i-th one i*CtrlPerMsg later. Zero (the default, and the
	// legacy model) makes a flat broadcast latency-only; scaling
	// experiments set it non-zero to expose the flat coordinator's
	// O(N) serialization bottleneck that the coordination tree removes.
	CtrlPerMsg Duration
	// Syscall is the cost of one virtualized system call.
	Syscall Duration
	// SignalDeliver is the cost of delivering one signal to one process.
	SignalDeliver Duration
	// FilterRule is the cost of installing/removing one netfilter rule.
	FilterRule Duration
	// SockOptRead is the cost of one getsockopt/setsockopt round.
	SockOptRead Duration
	// ConnSetup is the agent-side cost of re-establishing one connection
	// during restart (socket creation, schedule bookkeeping, kernel
	// connect/accept), excluding the network RTT which the simulation
	// pays for real.
	ConnSetup Duration
	// ProcCreate is the cost of creating one process in a fresh pod during
	// restart (fork+exec-equivalent plus namespace wiring).
	ProcCreate Duration
	// PodCreate is the cost of instantiating an empty pod (namespace,
	// filesystem view).
	PodCreate Duration
	// CheckpointFixed is per-agent fixed overhead of a checkpoint
	// (quiescing the pod, walking kernel tables, writing headers).
	CheckpointFixed Duration
	// PrecopyRoundFixed is the fixed overhead of one live pre-copy round
	// after the base snapshot: re-walking the dirty bitmap and emitting a
	// delta record header, all while the pod keeps running.
	PrecopyRoundFixed Duration
	// PrecopyResidualFixed is the fixed overhead of the quiesced residual
	// capture that ends a pre-copy checkpoint. It is far smaller than
	// CheckpointFixed because the kernel-table walk happened during the
	// live rounds; only the final dirty-set scan and header runs inside
	// the suspend window.
	PrecopyResidualFixed Duration
	// RestartFixed is the per-agent fixed overhead of a restart.
	RestartFixed Duration
	// StoreReadBandwidth models pulling checkpoint state *back* from the
	// shared store on the recovery path, bytes/second over the logical
	// image mass (the same basis as every other image cost). It is far
	// below DiskBandwidth: a failover reads cold data through the
	// commodity shared-storage fabric under contention (every surviving
	// node re-reads at once) and pays seek, decode, and verification per
	// record, where the flush side streams sequentially into the array's
	// write cache. Checkpoint-time validation read-back is NOT charged
	// at this rate — it re-reads data still resident in the array cache,
	// overlapped with the running job, off every critical path.
	StoreReadBandwidth float64
	// PromoteFixed is the per-pod fixed overhead of activating a warm
	// standby shadow (rebinding the VIP and reattaching the netstack to
	// state already resident in memory) — the warm counterpart of
	// RestartFixed, minus everything a cold restore pays for.
	PromoteFixed Duration
	// ImageCostScale multiplies checkpoint-image byte counts before they
	// are converted to time or wire transfer. Experiments that shrink
	// application memory by a Scale factor set this to 1/Scale so the
	// simulated times reflect paper-scale images while the host only
	// copies the scaled-down bytes.
	ImageCostScale float64
}

// EffImageBytes applies ImageCostScale to an image byte count.
func (c Costs) EffImageBytes(b int64) int64 {
	if c.ImageCostScale <= 0 {
		return b
	}
	return int64(float64(b) * c.ImageCostScale)
}

// DefaultCosts returns the calibrated 2005-era model.
func DefaultCosts() Costs {
	return Costs{
		MemBandwidth:     1.6e9, // ~1.6 GB/s memcpy on 2005 Xeon
		RestoreBandwidth: 0.9e9, // restores fault pages in
		DiskBandwidth:    150e6, // FC SAN
		NetLatency:       60 * Microsecond,
		NetBandwidth:     125e6, // GbE
		CtrlLatency:      150 * Microsecond,
		Syscall:          2 * Microsecond,
		SignalDeliver:    4 * Microsecond,
		FilterRule:       8 * Microsecond,
		SockOptRead:      2 * Microsecond,
		ConnSetup:        2 * Millisecond,
		ProcCreate:       900 * Microsecond,
		PodCreate:        6 * Millisecond,
		CheckpointFixed:  80 * Millisecond,
		// One dirty-bitmap walk + delta header per live round; the final
		// residual adds the quiesced scan. Both are an order of magnitude
		// below CheckpointFixed — that gap is the downtime win pre-copy
		// buys.
		PrecopyRoundFixed:    3 * Millisecond,
		PrecopyResidualFixed: 8 * Millisecond,
		RestartFixed:         180 * Millisecond,
		StoreReadBandwidth:   25e6, // cold shared-store read-back under failover contention (2005 NFS/SAN class)
		PromoteFixed:         2 * Millisecond,
	}
}

// MemCopyTime converts a byte count into simulated serialization time.
func (c Costs) MemCopyTime(bytes int64) Duration {
	return Duration(float64(bytes) / c.MemBandwidth * 1e9)
}

// RestoreTime converts a byte count into simulated restore time.
func (c Costs) RestoreTime(bytes int64) Duration {
	return Duration(float64(bytes) / c.RestoreBandwidth * 1e9)
}

// NetTransferTime is the serialization (bandwidth) component of sending n
// bytes on a LAN link, excluding propagation latency.
func (c Costs) NetTransferTime(bytes int64) Duration {
	return Duration(float64(bytes) / c.NetBandwidth * 1e9)
}

// DiskTime converts a byte count into simulated SAN write time.
func (c Costs) DiskTime(bytes int64) Duration {
	return Duration(float64(bytes) / c.DiskBandwidth * 1e9)
}

// StoreReadTime converts a byte count into simulated recovery-path
// store read-back time. Costs built by hand (not via DefaultCosts) may
// leave the bandwidth zero; they read back for free, matching the
// pre-StoreReadBandwidth model.
func (c Costs) StoreReadTime(bytes int64) Duration {
	if c.StoreReadBandwidth <= 0 {
		return 0
	}
	return Duration(float64(bytes) / c.StoreReadBandwidth * 1e9)
}

func (c Costs) String() string {
	return fmt.Sprintf("Costs{mem=%.1fGB/s net=%.0fMB/s lat=%v}",
		c.MemBandwidth/1e9, c.NetBandwidth/1e6, c.NetLatency)
}
