package sim

import (
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	w := NewWorld(1)
	var order []int
	w.After(30, func() { order = append(order, 3) })
	w.After(10, func() { order = append(order, 1) })
	w.After(20, func() { order = append(order, 2) })
	w.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if w.Now() != 30 {
		t.Fatalf("Now = %v", w.Now())
	}
}

func TestSimultaneousEventsRunInScheduleOrder(t *testing.T) {
	w := NewWorld(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		w.After(100, func() { order = append(order, i) })
	}
	w.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	w := NewWorld(1)
	var fired []Time
	w.After(10, func() {
		fired = append(fired, w.Now())
		w.After(5, func() { fired = append(fired, w.Now()) })
	})
	w.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestCancel(t *testing.T) {
	w := NewWorld(1)
	ran := false
	id := w.After(10, func() { ran = true })
	w.Cancel(id)
	w.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	// Double cancel is a no-op.
	w.Cancel(id)
}

func TestCancelOneOfMany(t *testing.T) {
	w := NewWorld(1)
	var got []int
	a := w.After(10, func() { got = append(got, 1) })
	w.After(10, func() { got = append(got, 2) })
	w.Cancel(a)
	w.Run()
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("got = %v", got)
	}
}

func TestRunUntil(t *testing.T) {
	w := NewWorld(1)
	var fired []int
	w.After(10, func() { fired = append(fired, 1) })
	w.After(20, func() { fired = append(fired, 2) })
	w.After(30, func() { fired = append(fired, 3) })
	w.RunUntil(20)
	if len(fired) != 2 {
		t.Fatalf("fired = %v", fired)
	}
	if w.Now() != 20 {
		t.Fatalf("Now = %v", w.Now())
	}
	w.Run()
	if len(fired) != 3 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	w := NewWorld(1)
	w.RunUntil(1000)
	if w.Now() != 1000 {
		t.Fatalf("Now = %v", w.Now())
	}
}

func TestRunWhile(t *testing.T) {
	w := NewWorld(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		w.After(10, tick)
	}
	w.After(10, tick)
	w.RunWhile(func() bool { return n < 5 })
	if n != 5 {
		t.Fatalf("n = %d", n)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	w := NewWorld(1)
	w.RunUntil(100)
	ran := false
	w.After(-50, func() {
		if w.Now() != 100 {
			t.Errorf("Now = %v", w.Now())
		}
		ran = true
	})
	w.Run()
	if !ran {
		t.Fatal("event did not run")
	}
}

func TestAtClampsPast(t *testing.T) {
	w := NewWorld(1)
	w.RunUntil(100)
	var at Time
	w.At(50, func() { at = w.Now() })
	w.Run()
	if at != 100 {
		t.Fatalf("at = %v", at)
	}
}

func TestPending(t *testing.T) {
	w := NewWorld(1)
	a := w.After(10, func() {})
	w.After(20, func() {})
	if w.Pending() != 2 {
		t.Fatalf("Pending = %d", w.Pending())
	}
	w.Cancel(a)
	if w.Pending() != 1 {
		t.Fatalf("Pending after cancel = %d", w.Pending())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		w := NewWorld(42)
		var trace []int64
		for i := 0; i < 50; i++ {
			d := Duration(w.Rand().Intn(1000))
			w.After(d, func() { trace = append(trace, int64(w.Now())) })
		}
		w.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestJitterBounds(t *testing.T) {
	w := NewWorld(7)
	base := Duration(1000000)
	for i := 0; i < 1000; i++ {
		j := w.Jitter(base, 0.3)
		if j < 700000 || j > 1300000 {
			t.Fatalf("jitter out of bounds: %v", j)
		}
	}
	if w.Jitter(base, 0) != base {
		t.Fatal("zero-frac jitter must be identity")
	}
}

func TestCostConversions(t *testing.T) {
	c := DefaultCosts()
	if got := c.MemCopyTime(int64(c.MemBandwidth)); got < 999*Millisecond || got > 1001*Millisecond {
		t.Fatalf("MemCopyTime(1s worth) = %v", got)
	}
	if c.RestoreTime(1<<20) <= c.MemCopyTime(1<<20) {
		t.Fatal("restore should be slower than save")
	}
	if c.NetTransferTime(0) != 0 {
		t.Fatal("zero bytes should be free")
	}
	if c.DiskTime(1<<20) <= c.MemCopyTime(1<<20) {
		t.Fatal("SAN should be slower than memory in this model")
	}
}

// Property: for any schedule of non-negative delays, events fire in
// nondecreasing time order.
func TestQuickMonotonicClock(t *testing.T) {
	f := func(delays []uint16) bool {
		w := NewWorld(3)
		var last Time = -1
		ok := true
		for _, d := range delays {
			w.After(Duration(d), func() {
				if w.Now() < last {
					ok = false
				}
				last = w.Now()
			})
		}
		w.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
