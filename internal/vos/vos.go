// Package vos implements the virtual operating system of the ZapC
// reproduction: cluster nodes with CPUs, processes, PIDs, signals, file
// descriptor tables, memory regions, and timers.
//
// Processes are cooperative step machines: a Program's Step method runs
// one burst of work against the syscall Context and reports how much
// virtual CPU it consumed and whether the process blocks or exits. All
// program state is explicit data serialized through Save/Restore, which
// is the substitution this reproduction makes for OS-level capture of
// process memory and registers (a Go runtime cannot freeze and serialize
// goroutine stacks): a SIGSTOP parks a virtual process at a step
// boundary exactly as Zap stops a real process at a kernel entry, and
// the checkpoint code path — enumerate, freeze, serialize, restore,
// remap identifiers — is preserved.
package vos

import (
	"fmt"
	"sort"

	"zapc/internal/imgfmt"
	"zapc/internal/memfs"
	"zapc/internal/netstack"
	"zapc/internal/sim"
)

// PID identifies a process. Real PIDs are node-scoped; virtual PIDs are
// pod-scoped and preserved across migration.
type PID int

// Status is a process's scheduler state.
type Status int

// Process states. Stopped (SIGSTOP) is a separate flag that gates
// scheduling orthogonally to Ready/Blocked.
const (
	StatusReady Status = iota
	StatusRunning
	StatusBlocked
	StatusExited
)

func (s Status) String() string {
	switch s {
	case StatusReady:
		return "ready"
	case StatusRunning:
		return "running"
	case StatusBlocked:
		return "blocked"
	case StatusExited:
		return "exited"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Signal numbers (the subset the checkpoint system uses).
type Signal int

// Supported signals.
const (
	SIGSTOP Signal = 19
	SIGCONT Signal = 18
	SIGKILL Signal = 9
)

// FDWait names one file descriptor and the readiness events a blocked
// process is waiting for.
type FDWait struct {
	FD   int
	Mask netstack.PollMask
}

// StepResult is what a Program's Step reports back to the scheduler.
type StepResult struct {
	// Cost is the virtual CPU time consumed by this step (syscall costs
	// are added automatically by the Context).
	Cost sim.Duration
	// Block, when true, parks the process until one of the waited FDs
	// becomes ready (per its mask) or the timeout fires.
	Block bool
	// WaitFDs lists descriptors to wait on when blocking.
	WaitFDs []FDWait
	// WaitTimeout, when nonzero, wakes the process after this duration
	// even if no FD fires (pure sleep when WaitFDs is empty).
	WaitTimeout sim.Duration
	// Exit terminates the process with ExitCode.
	Exit     bool
	ExitCode int
}

// Program is the application code of a virtual process. Step must be
// written re-entrantly: after a wake-up (or a restart on another node)
// it is invoked again and must resume from its own explicit state.
type Program interface {
	// Step runs one burst of work.
	Step(ctx *Context) StepResult
	// Save serializes the program's entire state into the checkpoint
	// image (the intermediate format keeps it portable across nodes).
	Save(enc *imgfmt.Encoder) error
	// Restore reinstates state saved by Save.
	Restore(dec *imgfmt.Decoder) error
	// Kind returns the registry tag used to re-instantiate the program
	// at restart.
	Kind() string
}

// Env is the execution environment a pod gives its member processes:
// the namespace through which every syscall is routed. Base (non-pod)
// processes get an Env with Virtualized=false and a node-level stack.
type Env struct {
	Stack *netstack.Stack
	FS    *memfs.FS
	// TimeBias is added to the real clock by virtualized time queries;
	// restart sets it so that application-visible time is continuous
	// across the checkpoint gap.
	TimeBias sim.Duration
	// Virtualized marks pod membership: syscalls pay the thin
	// interposition overhead and PIDs resolve to virtual PIDs.
	Virtualized bool
	// VirtOverhead is the per-syscall cost of the virtualization layer.
	VirtOverhead sim.Duration
}

// Memory region of a process. Data holds real bytes so checkpoint image
// sizes are genuine.
type Region struct {
	Name string
	Data []byte
}

// Process is one virtual process.
type Process struct {
	node *Node
	// RPID is the node-level (real) PID; it changes when a process is
	// restarted on another node, which is exactly why pods expose
	// virtual PIDs.
	RPID PID
	// VPID is the pod-scoped virtual PID (0 outside a pod).
	VPID PID
	Prog Program
	Env  *Env

	status  Status
	stopped bool

	fds    map[int]*netstack.Socket
	nextFD int

	mem []Region
	// Dirty-region tracking for incremental checkpoints: memClock ticks
	// on every region write and memVer records, per region, the clock
	// value of its last write. A checkpoint generation records the clock
	// as its watermark; the next generation only serializes regions whose
	// version exceeds it.
	memClock uint64
	memVer   map[string]uint64

	// Blocking state.
	waitFDs  []FDWait
	waitEv   sim.EventID
	deadline sim.Time // wake deadline; 0 when none
	hasTimer bool

	exitCode int
	queued   bool
	cpuTime  sim.Duration
}

// Status returns the scheduler state.
func (p *Process) Status() Status { return p.status }

// Stopped reports whether the process is SIGSTOPped.
func (p *Process) Stopped() bool { return p.stopped }

// ExitCode returns the exit code of an exited process.
func (p *Process) ExitCode() int { return p.exitCode }

// CPUTime returns the virtual CPU time consumed so far.
func (p *Process) CPUTime() sim.Duration { return p.cpuTime }

// Node returns the hosting node.
func (p *Process) Node() *Node { return p.node }

// FDs returns the open descriptors in ascending order.
func (p *Process) FDs() []int {
	out := make([]int, 0, len(p.fds))
	for fd := range p.fds {
		out = append(out, fd)
	}
	sort.Ints(out)
	return out
}

// SocketFor returns the socket behind a descriptor.
func (p *Process) SocketFor(fd int) (*netstack.Socket, bool) {
	s, ok := p.fds[fd]
	return s, ok
}

// InstallFD wires a restored socket into the descriptor table at a
// specific slot (restart path).
func (p *Process) InstallFD(fd int, s *netstack.Socket) {
	p.fds[fd] = s
	if fd >= p.nextFD {
		p.nextFD = fd + 1
	}
}

// Memory returns the process's memory regions.
func (p *Process) Memory() []Region { return p.mem }

// MemoryBytes reports the total size of all regions.
func (p *Process) MemoryBytes() int64 {
	var n int64
	for _, r := range p.mem {
		n += int64(len(r.Data))
	}
	return n
}

// SetRegion creates or replaces a named memory region, marking it dirty
// for incremental checkpointing.
func (p *Process) SetRegion(name string, data []byte) {
	p.markDirty(name)
	for i := range p.mem {
		if p.mem[i].Name == name {
			p.mem[i].Data = data
			return
		}
	}
	p.mem = append(p.mem, Region{Name: name, Data: data})
}

// markDirty advances the write clock and stamps the region, creating the
// version entry if needed (SetRegion calls it before the region exists).
func (p *Process) markDirty(name string) {
	if p.memVer == nil {
		p.memVer = make(map[string]uint64)
	}
	p.memClock++
	p.memVer[name] = p.memClock
}

// TouchRegion marks an existing region dirty without replacing its
// backing slice (programs that mutate region bytes in place call this so
// incremental and pre-copy checkpoints re-serialize the region). Touching
// a region that does not exist is a programming error and is reported
// rather than silently creating a phantom version entry.
func (p *Process) TouchRegion(name string) error {
	if _, ok := p.Region(name); !ok {
		return fmt.Errorf("vos: touch of nonexistent region %q in pid %d", name, p.VPID)
	}
	p.markDirty(name)
	return nil
}

// MemClock returns the process's region-write clock. A checkpoint
// records it as the watermark against which the next incremental
// generation computes dirty regions.
func (p *Process) MemClock() uint64 { return p.memClock }

// RegionVersion returns the clock value of a region's last write (0 if
// the region has never been written through the tracked API).
func (p *Process) RegionVersion(name string) uint64 { return p.memVer[name] }

// DirtyRegions returns the regions written after the given watermark, in
// table order.
func (p *Process) DirtyRegions(since uint64) []Region {
	var out []Region
	for _, r := range p.mem {
		if p.memVer[r.Name] > since {
			out = append(out, r)
		}
	}
	return out
}

// DirtyBytes reports the total size of the regions written after the
// given watermark — the quantity the pre-copy coordinator's convergence
// check compares against its threshold.
func (p *Process) DirtyBytes(since uint64) int64 {
	var n int64
	for _, r := range p.mem {
		if p.memVer[r.Name] > since {
			n += int64(len(r.Data))
		}
	}
	return n
}

// SnapshotRegions deep-copies the regions written after the given
// watermark and returns them together with the write clock the copies
// are consistent at. The simulation runs event callbacks atomically, so
// no process is mid-step while a snapshot is taken: the returned pages
// and watermark form a read-consistent pair even while the process keeps
// running between events — the simulated stand-in for copy-on-write /
// soft-dirty capture. Pass since=0 for a full-image snapshot.
func (p *Process) SnapshotRegions(since uint64) ([]Region, uint64) {
	var out []Region
	for _, r := range p.mem {
		if p.memVer[r.Name] > since {
			out = append(out, Region{Name: r.Name, Data: append([]byte(nil), r.Data...)})
		}
	}
	return out, p.memClock
}

// Region returns a named memory region's data.
func (p *Process) Region(name string) ([]byte, bool) {
	for i := range p.mem {
		if p.mem[i].Name == name {
			return p.mem[i].Data, true
		}
	}
	return nil, false
}

// DropRegion removes a named region.
func (p *Process) DropRegion(name string) {
	for i := range p.mem {
		if p.mem[i].Name == name {
			p.mem = append(p.mem[:i], p.mem[i+1:]...)
			return
		}
	}
}

// Deadline returns the absolute wake deadline if the process is blocked
// with a timeout.
func (p *Process) Deadline() (sim.Time, bool) { return p.deadline, p.hasTimer }

// WaitSet returns the FD waits of a blocked process.
func (p *Process) WaitSet() []FDWait {
	return append([]FDWait(nil), p.waitFDs...)
}

// Signal delivers a signal to the process.
func (p *Process) Signal(sig Signal) {
	if p.status == StatusExited {
		return
	}
	switch sig {
	case SIGSTOP:
		p.stopped = true
		// A ready process is pulled from the run queue lazily: the
		// scheduler skips stopped processes. A running step completes
		// first (checkpoint waits for quiescence).
	case SIGCONT:
		if !p.stopped {
			return
		}
		p.stopped = false
		if p.status == StatusReady {
			p.node.enqueue(p)
		}
		if p.status == StatusBlocked {
			// Re-check conditions; they may have changed while stopped.
			p.node.recheckBlocked(p)
		}
	case SIGKILL:
		p.exit(137)
	}
}

// Quiescent reports whether the process cannot run (stopped, blocked, or
// exited) — the condition the checkpoint agent waits for after SIGSTOP.
func (p *Process) Quiescent() bool {
	if p.status == StatusExited {
		return true
	}
	return p.stopped && p.status != StatusRunning
}

func (p *Process) exit(code int) {
	if p.status == StatusExited {
		return
	}
	p.status = StatusExited
	p.exitCode = code
	p.clearWaits()
	for _, fd := range p.FDs() {
		s := p.fds[fd]
		s.SetNotify(nil)
		s.Close()
	}
	p.fds = map[int]*netstack.Socket{}
	p.node.procExited(p)
}

func (p *Process) clearWaits() {
	for _, wfd := range p.waitFDs {
		if s, ok := p.fds[wfd.FD]; ok {
			s.SetNotify(nil)
		}
	}
	p.waitFDs = nil
	if p.hasTimer {
		p.node.w.Cancel(p.waitEv)
		p.hasTimer = false
		p.deadline = 0
	}
}
