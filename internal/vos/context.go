package vos

import (
	"errors"
	"math/rand"

	"zapc/internal/netstack"
	"zapc/internal/sim"
)

// Syscall errors.
var (
	ErrBadFD = errors.New("vos: bad file descriptor")
)

// Context is the system-call interface handed to a Program's Step. Every
// call is routed through the process's pod environment — identifier
// translation, time virtualization, and the thin interposition layer —
// and charged to the step's simulated cost.
type Context struct {
	proc  *Process
	node  *Node
	extra sim.Duration
}

// Proc returns the calling process (for memory-region manipulation).
func (c *Context) Proc() *Process { return c.proc }

func (c *Context) charge() {
	costs := c.node.w.Costs
	c.extra += costs.Syscall
	if c.proc.Env.Virtualized {
		c.extra += c.proc.Env.VirtOverhead
	}
}

// Now returns the current time as seen by the application: the real
// clock plus the pod's time bias, so that time appears continuous across
// a checkpoint/restart gap.
func (c *Context) Now() sim.Time {
	c.charge()
	return c.node.w.Now() + sim.Time(c.proc.Env.TimeBias)
}

// PID returns the process identifier the application sees: the stable
// virtual PID inside a pod, the real PID outside.
func (c *Context) PID() PID {
	c.charge()
	if c.proc.Env.Virtualized {
		return c.proc.VPID
	}
	return c.proc.RPID
}

// Rand returns the world's deterministic random source.
func (c *Context) Rand() *rand.Rand { return c.node.w.Rand() }

// LocalIP returns the pod's virtual IP address.
func (c *Context) LocalIP() netstack.IP { return c.proc.Env.Stack.IPAddr() }

func (c *Context) sock(fd int) (*netstack.Socket, error) {
	s, ok := c.proc.fds[fd]
	if !ok {
		return nil, ErrBadFD
	}
	return s, nil
}

// Socket creates a socket of the given protocol and returns its
// descriptor.
func (c *Context) Socket(proto netstack.Proto) int {
	c.charge()
	s := c.proc.Env.Stack.Socket(proto)
	fd := c.proc.nextFD
	c.proc.nextFD++
	c.proc.fds[fd] = s
	return fd
}

// Bind binds a socket to a local port (0 allocates an ephemeral port).
func (c *Context) Bind(fd int, port netstack.Port) error {
	c.charge()
	s, err := c.sock(fd)
	if err != nil {
		return err
	}
	return s.Bind(port)
}

// BindRaw binds a RAW socket to an IP protocol number.
func (c *Context) BindRaw(fd, ipProto int) error {
	c.charge()
	s, err := c.sock(fd)
	if err != nil {
		return err
	}
	return s.BindRaw(ipProto)
}

// Listen marks a TCP socket as accepting connections.
func (c *Context) Listen(fd, backlog int) error {
	c.charge()
	s, err := c.sock(fd)
	if err != nil {
		return err
	}
	return s.Listen(backlog)
}

// Connect initiates a connection; completion is observed via Poll or a
// blocked wait on PollOut.
func (c *Context) Connect(fd int, to netstack.Addr) error {
	c.charge()
	s, err := c.sock(fd)
	if err != nil {
		return err
	}
	return s.Connect(to)
}

// Accept dequeues an established connection, returning its new
// descriptor, or ErrWouldBlock.
func (c *Context) Accept(fd int) (int, error) {
	c.charge()
	s, err := c.sock(fd)
	if err != nil {
		return -1, err
	}
	child, err := s.Accept()
	if err != nil {
		return -1, err
	}
	nfd := c.proc.nextFD
	c.proc.nextFD++
	c.proc.fds[nfd] = child
	return nfd, nil
}

// Send writes stream data (oob = TCP urgent data).
func (c *Context) Send(fd int, data []byte, oob bool) (int, error) {
	c.charge()
	s, err := c.sock(fd)
	if err != nil {
		return 0, err
	}
	return s.Send(data, oob)
}

// SendTo transmits one datagram.
func (c *Context) SendTo(fd int, data []byte, to netstack.Addr) (int, error) {
	c.charge()
	s, err := c.sock(fd)
	if err != nil {
		return 0, err
	}
	return s.SendTo(data, to)
}

// SendRaw transmits one raw IP packet.
func (c *Context) SendRaw(fd int, dst netstack.IP, data []byte) (int, error) {
	c.charge()
	s, err := c.sock(fd)
	if err != nil {
		return 0, err
	}
	return s.SendRaw(dst, data)
}

// Recv reads up to n bytes (peek = MSG_PEEK, oob = MSG_OOB).
func (c *Context) Recv(fd, n int, peek, oob bool) ([]byte, error) {
	c.charge()
	s, err := c.sock(fd)
	if err != nil {
		return nil, err
	}
	return s.Recv(n, peek, oob)
}

// RecvFrom dequeues one datagram.
func (c *Context) RecvFrom(fd int, peek bool) (netstack.Datagram, error) {
	c.charge()
	s, err := c.sock(fd)
	if err != nil {
		return netstack.Datagram{}, err
	}
	return s.RecvFrom(peek)
}

// Poll reports socket readiness.
func (c *Context) Poll(fd int) netstack.PollMask {
	c.charge()
	s, err := c.sock(fd)
	if err != nil {
		return netstack.PollErr
	}
	return s.Poll()
}

// Shutdown half-closes a connection.
func (c *Context) Shutdown(fd int, read, write bool) error {
	c.charge()
	s, err := c.sock(fd)
	if err != nil {
		return err
	}
	return s.Shutdown(read, write)
}

// Close releases a descriptor.
func (c *Context) Close(fd int) error {
	c.charge()
	s, err := c.sock(fd)
	if err != nil {
		return err
	}
	s.SetNotify(nil)
	s.Close()
	delete(c.proc.fds, fd)
	return nil
}

// GetSockOpt reads a socket option.
func (c *Context) GetSockOpt(fd int, o netstack.Opt) (int64, error) {
	c.charge()
	s, err := c.sock(fd)
	if err != nil {
		return 0, err
	}
	return s.GetOpt(o), nil
}

// SetSockOpt writes a socket option.
func (c *Context) SetSockOpt(fd int, o netstack.Opt, v int64) error {
	c.charge()
	s, err := c.sock(fd)
	if err != nil {
		return err
	}
	s.SetOpt(o, v)
	return nil
}

// SockErr returns the pending error on a socket (SO_ERROR).
func (c *Context) SockErr(fd int) error {
	c.charge()
	s, err := c.sock(fd)
	if err != nil {
		return err
	}
	return s.Err()
}

// SockState returns the connection state of a socket.
func (c *Context) SockState(fd int) netstack.State {
	s, err := c.sock(fd)
	if err != nil {
		return netstack.StateClosed
	}
	return s.State()
}

// WriteFile stores a file on the shared filesystem.
func (c *Context) WriteFile(path string, data []byte) error {
	c.charge()
	return c.proc.Env.FS.WriteFile(path, data)
}

// ReadFile reads a file from the shared filesystem.
func (c *Context) ReadFile(path string) ([]byte, error) {
	c.charge()
	return c.proc.Env.FS.ReadFile(path)
}

// Step-result helpers.

// Yield returns a continue-running result charging the given CPU cost.
func Yield(cost sim.Duration) StepResult { return StepResult{Cost: cost} }

// Exit terminates the process.
func Exit(code int) StepResult { return StepResult{Exit: true, ExitCode: code} }

// Sleep parks the process for d of virtual time.
func Sleep(d sim.Duration) StepResult {
	return StepResult{Block: true, WaitTimeout: d}
}

// BlockRead parks the process until one of the descriptors is readable
// (or has an error/EOF condition).
func BlockRead(fds ...int) StepResult {
	r := StepResult{Block: true}
	for _, fd := range fds {
		r.WaitFDs = append(r.WaitFDs, FDWait{fd, netstack.PollIn | netstack.PollHUP | netstack.PollPRI})
	}
	return r
}

// BlockWrite parks the process until the descriptor is writable.
func BlockWrite(fd int) StepResult {
	return StepResult{Block: true, WaitFDs: []FDWait{{fd, netstack.PollOut | netstack.PollHUP}}}
}

// BlockConnect parks the process until a pending connect resolves.
func BlockConnect(fd int) StepResult {
	return StepResult{Block: true, WaitFDs: []FDWait{{fd, netstack.PollOut | netstack.PollErr | netstack.PollHUP}}}
}
