package vos

import (
	"errors"
	"testing"

	"zapc/internal/imgfmt"
	"zapc/internal/memfs"
	"zapc/internal/netstack"
	"zapc/internal/sim"
)

// testEnv builds a world, network, one stack and one node.
func testEnv(t *testing.T) (*sim.World, *Node, *Env) {
	t.Helper()
	w := sim.NewWorld(7)
	nw := netstack.NewNetwork(w)
	st, err := nw.NewStack(0x0a000001)
	if err != nil {
		t.Fatal(err)
	}
	n := NewNode(w, "node0", 2)
	env := &Env{Stack: st, FS: memfs.New()}
	return w, n, env
}

// counter runs for `steps` steps, then exits.
type counter struct {
	Steps int
	Done  int
}

func (c *counter) Step(ctx *Context) StepResult {
	if c.Done >= c.Steps {
		return Exit(0)
	}
	c.Done++
	return Yield(1 * sim.Millisecond)
}
func (c *counter) Save(e *imgfmt.Encoder) error {
	e.Uint(1, uint64(c.Steps))
	e.Uint(2, uint64(c.Done))
	return nil
}
func (c *counter) Restore(d *imgfmt.Decoder) error {
	s, err := d.Uint(1)
	if err != nil {
		return err
	}
	dn, err := d.Uint(2)
	if err != nil {
		return err
	}
	c.Steps, c.Done = int(s), int(dn)
	return nil
}
func (c *counter) Kind() string { return "test.counter" }

// sleeper sleeps once, then exits recording the wake time.
type sleeper struct {
	D     sim.Duration
	Slept bool
	Woke  sim.Time
}

func (s *sleeper) Step(ctx *Context) StepResult {
	if !s.Slept {
		s.Slept = true
		return Sleep(s.D)
	}
	s.Woke = ctx.Now()
	return Exit(0)
}
func (s *sleeper) Save(e *imgfmt.Encoder) error    { return nil }
func (s *sleeper) Restore(d *imgfmt.Decoder) error { return nil }
func (s *sleeper) Kind() string                    { return "test.sleeper" }

func TestProcessRunsToExit(t *testing.T) {
	w, n, env := testEnv(t)
	c := &counter{Steps: 5}
	p := n.Spawn(c, env)
	w.Run()
	if p.Status() != StatusExited {
		t.Fatalf("status = %v", p.Status())
	}
	if c.Done != 5 {
		t.Fatalf("done = %d", c.Done)
	}
	if p.CPUTime() < 5*sim.Millisecond {
		t.Fatalf("cpu = %v", p.CPUTime())
	}
	if len(n.Procs()) != 0 {
		t.Fatal("exited process still in table")
	}
}

func TestMultiCPUParallelism(t *testing.T) {
	w, n, env := testEnv(t)
	// Two CPUs, two 10ms jobs: wall time ~10ms, not 20.
	a := n.Spawn(&counter{Steps: 10}, env)
	b := n.Spawn(&counter{Steps: 10}, env)
	w.Run()
	if a.Status() != StatusExited || b.Status() != StatusExited {
		t.Fatal("jobs did not finish")
	}
	elapsed := sim.Duration(w.Now())
	if elapsed > 12*sim.Millisecond {
		t.Fatalf("no parallelism: elapsed %v", elapsed)
	}
}

func TestSingleCPUSerializes(t *testing.T) {
	w := sim.NewWorld(7)
	nw := netstack.NewNetwork(w)
	st, _ := nw.NewStack(1)
	n := NewNode(w, "uni", 1)
	env := &Env{Stack: st, FS: memfs.New()}
	n.Spawn(&counter{Steps: 10}, env)
	n.Spawn(&counter{Steps: 10}, env)
	w.Run()
	elapsed := sim.Duration(w.Now())
	if elapsed < 20*sim.Millisecond {
		t.Fatalf("single CPU ran jobs in parallel: %v", elapsed)
	}
}

func TestSleepWakes(t *testing.T) {
	w, n, env := testEnv(t)
	s := &sleeper{D: 50 * sim.Millisecond}
	p := n.Spawn(s, env)
	w.Run()
	if p.Status() != StatusExited {
		t.Fatal("sleeper did not exit")
	}
	if s.Woke < sim.Time(50*sim.Millisecond) {
		t.Fatalf("woke at %v", s.Woke)
	}
}

func TestSigStopContKill(t *testing.T) {
	w, n, env := testEnv(t)
	c := &counter{Steps: 1000}
	p := n.Spawn(c, env)
	w.RunUntil(sim.Time(5 * sim.Millisecond))
	p.Signal(SIGSTOP)
	w.RunUntil(w.Now() + sim.Time(2*sim.Millisecond)) // drain running step
	if !p.Quiescent() {
		t.Fatalf("not quiescent after SIGSTOP: %v stopped=%v", p.Status(), p.Stopped())
	}
	frozen := c.Done
	w.RunUntil(w.Now() + sim.Time(50*sim.Millisecond))
	if c.Done != frozen {
		t.Fatalf("stopped process kept running: %d -> %d", frozen, c.Done)
	}
	p.Signal(SIGCONT)
	w.RunUntil(w.Now() + sim.Time(10*sim.Millisecond))
	if c.Done <= frozen {
		t.Fatal("SIGCONT did not resume")
	}
	p.Signal(SIGKILL)
	w.Run()
	if p.Status() != StatusExited || p.ExitCode() != 137 {
		t.Fatalf("kill: status=%v code=%d", p.Status(), p.ExitCode())
	}
	if c.Done == 1000 {
		t.Fatal("process ran to completion despite kill")
	}
}

// echoServer accepts one connection and echoes one message.
type echoServer struct {
	Phase int
	LFD   int
	CFD   int
	Port  netstack.Port
}

func (s *echoServer) Step(ctx *Context) StepResult {
	switch s.Phase {
	case 0:
		s.LFD = ctx.Socket(netstack.TCP)
		if err := ctx.Bind(s.LFD, s.Port); err != nil {
			return Exit(1)
		}
		ctx.Listen(s.LFD, 4)
		s.Phase = 1
		return Yield(0)
	case 1:
		fd, err := ctx.Accept(s.LFD)
		if errors.Is(err, netstack.ErrWouldBlock) {
			return BlockRead(s.LFD)
		}
		if err != nil {
			return Exit(1)
		}
		s.CFD = fd
		s.Phase = 2
		return Yield(0)
	case 2:
		data, err := ctx.Recv(s.CFD, 1024, false, false)
		if errors.Is(err, netstack.ErrWouldBlock) {
			return BlockRead(s.CFD)
		}
		if err != nil {
			return Exit(1)
		}
		ctx.Send(s.CFD, data, false)
		s.Phase = 3
		return Yield(0)
	default:
		ctx.Close(s.CFD)
		ctx.Close(s.LFD)
		return Exit(0)
	}
}
func (s *echoServer) Save(e *imgfmt.Encoder) error    { return nil }
func (s *echoServer) Restore(d *imgfmt.Decoder) error { return nil }
func (s *echoServer) Kind() string                    { return "test.echoServer" }

// echoClient connects, sends, and verifies the echo.
type echoClient struct {
	Phase  int
	FD     int
	To     netstack.Addr
	Msg    string
	Got    string
	Status int
}

func (c *echoClient) Step(ctx *Context) StepResult {
	switch c.Phase {
	case 0:
		c.FD = ctx.Socket(netstack.TCP)
		if err := ctx.Connect(c.FD, c.To); err != nil {
			c.Status = 1
			return Exit(1)
		}
		c.Phase = 1
		return Yield(0)
	case 1:
		if ctx.SockState(c.FD) == netstack.StateConnecting {
			return BlockConnect(c.FD)
		}
		if err := ctx.SockErr(c.FD); err != nil {
			c.Status = 2
			return Exit(2)
		}
		ctx.Send(c.FD, []byte(c.Msg), false)
		c.Phase = 2
		return Yield(0)
	case 2:
		data, err := ctx.Recv(c.FD, 1024, false, false)
		if errors.Is(err, netstack.ErrWouldBlock) {
			return BlockRead(c.FD)
		}
		if err != nil {
			c.Status = 3
			return Exit(3)
		}
		c.Got += string(data)
		if len(c.Got) < len(c.Msg) {
			return Yield(0)
		}
		c.Phase = 3
		return Yield(0)
	default:
		ctx.Close(c.FD)
		return Exit(0)
	}
}
func (c *echoClient) Save(e *imgfmt.Encoder) error    { return nil }
func (c *echoClient) Restore(d *imgfmt.Decoder) error { return nil }
func (c *echoClient) Kind() string                    { return "test.echoClient" }

func TestSocketBlockingRoundTrip(t *testing.T) {
	w := sim.NewWorld(11)
	nw := netstack.NewNetwork(w)
	stA, _ := nw.NewStack(1)
	stB, _ := nw.NewStack(2)
	nA := NewNode(w, "a", 1)
	nB := NewNode(w, "b", 1)
	envA := &Env{Stack: stA, FS: memfs.New()}
	envB := &Env{Stack: stB, FS: memfs.New()}

	srv := &echoServer{Port: 9000}
	cli := &echoClient{To: netstack.Addr{IP: 1, Port: 9000}, Msg: "hello pod"}
	ps := nA.Spawn(srv, envA)
	pc := nB.Spawn(cli, envB)
	w.Run()
	if ps.Status() != StatusExited || pc.Status() != StatusExited {
		t.Fatalf("statuses: %v / %v", ps.Status(), pc.Status())
	}
	if pc.ExitCode() != 0 {
		t.Fatalf("client exit %d (status %d)", pc.ExitCode(), cli.Status)
	}
	if cli.Got != cli.Msg {
		t.Fatalf("echo = %q", cli.Got)
	}
}

func TestVirtualizedPIDAndOverhead(t *testing.T) {
	w, n, env := testEnv(t)
	env.Virtualized = true
	env.VirtOverhead = 150 * sim.Nanosecond
	var seenPID PID
	probe := &probeProg{fn: func(ctx *Context) { seenPID = ctx.PID() }}
	p := n.Spawn(probe, env)
	p.VPID = 42
	w.Run()
	if seenPID != 42 {
		t.Fatalf("virtual PID = %d, want 42", seenPID)
	}
	env2 := &Env{Stack: env.Stack, FS: env.FS}
	var rawPID PID
	p2 := n.Spawn(&probeProg{fn: func(ctx *Context) { rawPID = ctx.PID() }}, env2)
	w.Run()
	if rawPID != p2.RPID {
		t.Fatalf("raw PID = %d, want %d", rawPID, p2.RPID)
	}
}

type probeProg struct {
	fn   func(*Context)
	done bool
}

func (p *probeProg) Step(ctx *Context) StepResult {
	if !p.done {
		p.done = true
		p.fn(ctx)
	}
	return Exit(0)
}
func (p *probeProg) Save(e *imgfmt.Encoder) error    { return nil }
func (p *probeProg) Restore(d *imgfmt.Decoder) error { return nil }
func (p *probeProg) Kind() string                    { return "test.probe" }

func TestTimeVirtualizationBias(t *testing.T) {
	w, n, env := testEnv(t)
	env.Virtualized = true
	env.TimeBias = -sim.Duration(10 * sim.Second) // as if restarted after a gap
	var seen sim.Time
	n.Spawn(&probeProg{fn: func(ctx *Context) { seen = ctx.Now() }}, env)
	w.Run()
	if seen > 0 {
		t.Fatalf("biased time = %v, want negative offset from real clock", seen)
	}
}

func TestMemoryRegions(t *testing.T) {
	_, n, env := testEnv(t)
	p := n.Spawn(&counter{Steps: 1}, env)
	p.SetRegion("heap", make([]byte, 1<<20))
	p.SetRegion("stack", make([]byte, 8<<10))
	if p.MemoryBytes() != (1<<20)+(8<<10) {
		t.Fatalf("MemoryBytes = %d", p.MemoryBytes())
	}
	p.SetRegion("heap", make([]byte, 2<<20)) // replace
	if p.MemoryBytes() != (2<<20)+(8<<10) {
		t.Fatalf("after replace = %d", p.MemoryBytes())
	}
	if _, ok := p.Region("stack"); !ok {
		t.Fatal("stack region missing")
	}
	p.DropRegion("stack")
	if _, ok := p.Region("stack"); ok {
		t.Fatal("dropped region still present")
	}
}

func TestFDTable(t *testing.T) {
	w, n, env := testEnv(t)
	var fds []int
	n.Spawn(&probeProg{fn: func(ctx *Context) {
		fds = append(fds, ctx.Socket(netstack.TCP))
		fds = append(fds, ctx.Socket(netstack.UDP))
		fds = append(fds, ctx.Socket(netstack.RAW))
	}}, env)
	w.Run()
	if len(fds) != 3 || fds[0] == fds[1] || fds[1] == fds[2] {
		t.Fatalf("fds = %v", fds)
	}
}

func TestExitClosesSockets(t *testing.T) {
	w, n, env := testEnv(t)
	n.Spawn(&probeProg{fn: func(ctx *Context) {
		fd := ctx.Socket(netstack.TCP)
		ctx.Bind(fd, 1234)
		ctx.Listen(fd, 1)
	}}, env)
	w.Run()
	if got := len(env.Stack.Sockets()); got != 0 {
		t.Fatalf("sockets leaked after exit: %d", got)
	}
}

func TestNodeFail(t *testing.T) {
	w, n, env := testEnv(t)
	p := n.Spawn(&counter{Steps: 1000}, env)
	w.RunUntil(sim.Time(3 * sim.Millisecond))
	n.Fail()
	w.Run()
	if p.Status() != StatusExited {
		t.Fatal("process survived node failure")
	}
	if n.Spawn(&counter{Steps: 1}, env) != nil {
		t.Fatal("failed node accepted a new process")
	}
}

func TestSpawnStopped(t *testing.T) {
	w, n, env := testEnv(t)
	c := &counter{Steps: 10}
	p := n.SpawnStopped(c, env)
	w.RunUntil(sim.Time(50 * sim.Millisecond))
	if c.Done != 0 {
		t.Fatal("stopped spawn ran")
	}
	p.Signal(SIGCONT)
	w.Run()
	if p.Status() != StatusExited {
		t.Fatal("did not run after SIGCONT")
	}
}

func TestBlockedStopCont(t *testing.T) {
	// A process blocked on a socket, then STOPped, then the socket
	// becomes readable, then CONT: it must wake and consume the data.
	w := sim.NewWorld(11)
	nw := netstack.NewNetwork(w)
	stA, _ := nw.NewStack(1)
	stB, _ := nw.NewStack(2)
	n := NewNode(w, "a", 1)
	envA := &Env{Stack: stA, FS: memfs.New()}

	srv := &echoServer{Port: 9000}
	ps := n.Spawn(srv, envA)
	w.RunUntil(sim.Time(10 * sim.Millisecond)) // server now blocked in accept
	if ps.Status() != StatusBlocked {
		t.Fatalf("server status = %v", ps.Status())
	}
	ps.Signal(SIGSTOP)
	if !ps.Quiescent() {
		t.Fatal("blocked+stopped not quiescent")
	}
	// Client connects while the server is stopped.
	cli := stB.Socket(netstack.TCP)
	cli.Connect(netstack.Addr{IP: 1, Port: 9000})
	w.RunUntil(w.Now() + sim.Time(100*sim.Millisecond))
	if ps.Status() == StatusRunning {
		t.Fatal("stopped process ran")
	}
	ps.Signal(SIGCONT)
	w.RunUntil(w.Now() + sim.Time(500*sim.Millisecond))
	if srv.Phase < 2 {
		t.Fatalf("server did not accept after CONT: phase %d", srv.Phase)
	}
}

func TestContextFileIO(t *testing.T) {
	w, n, env := testEnv(t)
	var got []byte
	n.Spawn(&probeProg{fn: func(ctx *Context) {
		ctx.WriteFile("out/data", []byte("persisted"))
		got, _ = ctx.ReadFile("out/data")
	}}, env)
	w.Run()
	if string(got) != "persisted" {
		t.Fatalf("got %q", got)
	}
}
