package vos

import (
	"errors"
	"testing"

	"zapc/internal/imgfmt"
	"zapc/internal/netstack"
	"zapc/internal/sim"
)

func TestBadFDErrors(t *testing.T) {
	w, n, env := testEnv(t)
	var errs []error
	n.Spawn(&probeProg{fn: func(ctx *Context) {
		_, e1 := ctx.Recv(99, 10, false, false)
		_, e2 := ctx.Send(99, []byte("x"), false)
		e3 := ctx.Close(99)
		_, e4 := ctx.Accept(99)
		errs = append(errs, e1, e2, e3, e4)
	}}, env)
	w.Run()
	for i, err := range errs {
		if !errors.Is(err, ErrBadFD) {
			t.Fatalf("op %d: err = %v", i, err)
		}
	}
}

func TestPollOnBadFDReportsError(t *testing.T) {
	w, n, env := testEnv(t)
	var mask netstack.PollMask
	n.Spawn(&probeProg{fn: func(ctx *Context) {
		mask = ctx.Poll(42)
	}}, env)
	w.Run()
	if mask&netstack.PollErr == 0 {
		t.Fatalf("mask = %v", mask)
	}
}

func TestCPUTimeAccounting(t *testing.T) {
	w, n, env := testEnv(t)
	p := n.Spawn(&counter{Steps: 10}, env)
	w.Run()
	// 10 steps of 1ms each plus minimum costs.
	if p.CPUTime() < 10*sim.Millisecond || p.CPUTime() > 11*sim.Millisecond {
		t.Fatalf("cpu = %v", p.CPUTime())
	}
}

func TestBlockedWriterWakesOnDrain(t *testing.T) {
	w := sim.NewWorld(5)
	nw := netstack.NewNetwork(w)
	stA, _ := nw.NewStack(1)
	stB, _ := nw.NewStack(2)
	node := NewNode(w, "n", 2)
	envA := &Env{Stack: stA}
	writer := &bulkWriter{To: netstack.Addr{IP: 2, Port: 90}, Total: 600 << 10}
	node.Spawn(writer, envA)
	// A kernel-side receiver that stops reading, then resumes.
	l := stB.Socket(netstack.TCP)
	l.Bind(90)
	l.Listen(1)
	var srv *netstack.Socket
	w.RunWhile(func() bool { return l.AcceptPending() == 0 })
	srv, _ = l.Accept()
	// Let the writer fill all buffers and block.
	w.RunUntil(w.Now() + sim.Time(2*sim.Second))
	if writer.Sent >= writer.Total {
		t.Fatal("writer finished without backpressure; enlarge Total")
	}
	// Drain; the blocked writer must wake and finish.
	done := sim.Time(0)
	var pump func()
	pump = func() {
		srv.Recv(1<<20, false, false)
		if writer.Sent < writer.Total {
			w.After(10*sim.Millisecond, pump)
		} else {
			done = w.Now()
		}
	}
	w.After(0, pump)
	w.RunUntil(w.Now() + sim.Time(60*sim.Second))
	if done == 0 {
		t.Fatalf("writer stuck at %d/%d", writer.Sent, writer.Total)
	}
}

// bulkWriter pushes Total bytes through one connection, blocking on
// PollOut when the send buffer fills.
type bulkWriter struct {
	Phase int
	FD    int
	To    netstack.Addr
	Total int
	Sent  int
}

func (b *bulkWriter) Step(ctx *Context) StepResult {
	switch b.Phase {
	case 0:
		b.FD = ctx.Socket(netstack.TCP)
		ctx.Connect(b.FD, b.To)
		b.Phase = 1
		return Yield(0)
	case 1:
		if ctx.SockState(b.FD) == netstack.StateConnecting {
			return BlockConnect(b.FD)
		}
		b.Phase = 2
		return Yield(0)
	default:
		if b.Sent >= b.Total {
			return Exit(0)
		}
		chunk := make([]byte, 8192)
		n, err := ctx.Send(b.FD, chunk, false)
		b.Sent += n
		if errors.Is(err, netstack.ErrWouldBlock) || n == 0 {
			return BlockWrite(b.FD)
		}
		return Yield(100 * sim.Microsecond)
	}
}
func (b *bulkWriter) Save(e *imgfmt.Encoder) error    { return nil }
func (b *bulkWriter) Restore(d *imgfmt.Decoder) error { return nil }
func (b *bulkWriter) Kind() string                    { return "test.bulkWriter" }

func TestRestoreBlockedAsReady(t *testing.T) {
	w := sim.NewWorld(6)
	nw := netstack.NewNetwork(w)
	st, _ := nw.NewStack(1)
	n := NewNode(w, "n", 1)
	env := &Env{Stack: st}
	srv := &echoServer{Port: 9100}
	p := n.Spawn(srv, env)
	w.RunUntil(sim.Time(20 * sim.Millisecond))
	if p.Status() != StatusBlocked {
		t.Fatalf("status = %v", p.Status())
	}
	n.RestoreBlockedAsReady(p)
	if p.Status() != StatusReady {
		t.Fatalf("after restore: %v", p.Status())
	}
	// It must re-block cleanly (idempotent retry of the accept).
	w.RunUntil(w.Now() + sim.Time(20*sim.Millisecond))
	if p.Status() != StatusBlocked {
		t.Fatalf("did not re-block: %v", p.Status())
	}
}

func TestSignalExitedProcessIsNoop(t *testing.T) {
	w, n, env := testEnv(t)
	p := n.Spawn(&counter{Steps: 1}, env)
	w.Run()
	p.Signal(SIGSTOP) // must not panic or resurrect
	p.Signal(SIGCONT)
	p.Signal(SIGKILL)
	if p.Status() != StatusExited {
		t.Fatal("status changed after death")
	}
}

func TestRemoveDetachesWithoutClosingSockets(t *testing.T) {
	w, n, env := testEnv(t)
	srv := &echoServer{Port: 4322}
	p2 := n.Spawn(srv, env)
	w.RunUntil(w.Now() + sim.Time(10*sim.Millisecond))
	s, ok := p2.SocketFor(srv.LFD)
	if !ok {
		t.Fatal("server lfd missing")
	}
	n.Remove(p2)
	if s.State() != netstack.StateListening {
		t.Fatal("Remove closed the socket; migration teardown must leave kernel state to the stack detach")
	}
}

func TestDirtyRegionTracking(t *testing.T) {
	_, n, env := testEnv(t)
	p := n.SpawnStopped(&counter{Steps: 1}, env)
	if p.MemClock() != 0 {
		t.Fatalf("fresh process mem clock = %d, want 0", p.MemClock())
	}
	p.SetRegion("a", []byte{1})
	p.SetRegion("b", []byte{2})
	mark := p.MemClock()
	if mark != 2 {
		t.Fatalf("mem clock after two writes = %d, want 2", mark)
	}
	if got := p.DirtyRegions(0); len(got) != 2 {
		t.Fatalf("dirty since 0 = %d regions, want 2", len(got))
	}
	if got := p.DirtyRegions(mark); len(got) != 0 {
		t.Fatalf("dirty since watermark = %d regions, want 0", len(got))
	}
	// In-place mutation is invisible without TouchRegion...
	data, _ := p.Region("a")
	data[0] = 9
	if got := p.DirtyRegions(mark); len(got) != 0 {
		t.Fatal("untouched in-place write should not mark dirty")
	}
	// ...and visible with it.
	if err := p.TouchRegion("a"); err != nil {
		t.Fatalf("TouchRegion(a): %v", err)
	}
	got := p.DirtyRegions(mark)
	if len(got) != 1 || got[0].Name != "a" {
		t.Fatalf("dirty after touch = %+v, want region a", got)
	}
	if p.RegionVersion("a") <= p.RegionVersion("b") {
		t.Fatal("touch did not advance region version")
	}
	// Replacing a region marks it dirty again.
	p.SetRegion("b", []byte{3})
	if got := p.DirtyRegions(p.RegionVersion("a")); len(got) != 1 || got[0].Name != "b" {
		t.Fatalf("dirty after SetRegion = %+v, want region b", got)
	}
}

func TestTouchRegionUnknown(t *testing.T) {
	_, n, env := testEnv(t)
	p := n.SpawnStopped(&counter{Steps: 1}, env)
	clock := p.MemClock()
	if err := p.TouchRegion("ghost"); err == nil {
		t.Fatal("TouchRegion on a nonexistent region must error")
	}
	if p.MemClock() != clock {
		t.Fatal("failed touch must not advance the write clock")
	}
	if p.RegionVersion("ghost") != 0 {
		t.Fatal("failed touch must not create a phantom version entry")
	}
}

func TestDirtyBytesAndSnapshot(t *testing.T) {
	_, n, env := testEnv(t)
	p := n.SpawnStopped(&counter{Steps: 1}, env)
	p.SetRegion("a", []byte{1, 2, 3})
	p.SetRegion("b", []byte{4, 5})
	if got := p.DirtyBytes(0); got != 5 {
		t.Fatalf("DirtyBytes(0) = %d, want 5", got)
	}
	mark := p.MemClock()
	if got := p.DirtyBytes(mark); got != 0 {
		t.Fatalf("DirtyBytes(watermark) = %d, want 0", got)
	}
	p.SetRegion("b", []byte{6, 7, 8, 9})
	if got := p.DirtyBytes(mark); got != 4 {
		t.Fatalf("DirtyBytes after one rewrite = %d, want 4", got)
	}
	// SnapshotRegions returns deep copies consistent at its watermark.
	snap, at := p.SnapshotRegions(mark)
	if at != p.MemClock() {
		t.Fatalf("snapshot watermark = %d, want current clock %d", at, p.MemClock())
	}
	if len(snap) != 1 || snap[0].Name != "b" {
		t.Fatalf("snapshot since watermark = %+v, want region b only", snap)
	}
	live, _ := p.Region("b")
	live[0] = 99
	if snap[0].Data[0] == 99 {
		t.Fatal("snapshot aliases live region bytes; must deep-copy")
	}
	full, _ := p.SnapshotRegions(0)
	if len(full) != 2 {
		t.Fatalf("full snapshot = %d regions, want 2", len(full))
	}
}
