package vos

import (
	"sort"

	"zapc/internal/netstack"
	"zapc/internal/sim"
)

// minStepCost prevents zero-cost busy loops from freezing virtual time.
const minStepCost = 200 * sim.Nanosecond

// Node is one physical cluster machine: a set of CPUs scheduling the
// processes hosted on it (across all its pods).
type Node struct {
	w       *sim.World
	name    string
	cpus    int
	running int
	runq    []*Process
	procs   map[PID]*Process
	nextPID PID
	failed  bool
}

// NewNode creates a node with the given CPU count.
func NewNode(w *sim.World, name string, cpus int) *Node {
	if cpus < 1 {
		cpus = 1
	}
	return &Node{
		w:       w,
		name:    name,
		cpus:    cpus,
		procs:   make(map[PID]*Process),
		nextPID: 1000,
	}
}

// Name returns the node's host name.
func (n *Node) Name() string { return n.name }

// CPUs returns the CPU count.
func (n *Node) CPUs() int { return n.cpus }

// World returns the simulation world.
func (n *Node) World() *sim.World { return n.w }

// Failed reports whether the node has been crashed by failure injection.
func (n *Node) Failed() bool { return n.failed }

// Fail crashes the node: every hosted process dies instantly, emulating
// a hardware fault the cluster recovers from by restarting the last
// checkpoint elsewhere.
func (n *Node) Fail() {
	n.failed = true
	for _, p := range n.Procs() {
		p.exit(255)
	}
	n.runq = nil
}

// Procs returns the node's live processes in real-PID order.
func (n *Node) Procs() []*Process {
	pids := make([]int, 0, len(n.procs))
	for pid := range n.procs {
		pids = append(pids, int(pid))
	}
	sort.Ints(pids)
	out := make([]*Process, 0, len(pids))
	for _, pid := range pids {
		out = append(out, n.procs[PID(pid)])
	}
	return out
}

// Spawn creates a process running prog in the given environment and
// makes it runnable. The real PID is freshly allocated — a restarted
// process will generally receive a different one, which is why pods
// expose stable virtual PIDs instead.
func (n *Node) Spawn(prog Program, env *Env) *Process {
	if n.failed {
		return nil
	}
	p := &Process{
		node:   n,
		RPID:   n.nextPID,
		Prog:   prog,
		Env:    env,
		status: StatusReady,
		fds:    make(map[int]*netstack.Socket),
	}
	n.nextPID++
	n.procs[p.RPID] = p
	n.enqueue(p)
	return p
}

// SpawnStopped creates a process in the stopped state (the restart path
// builds the whole pod before letting anything run).
func (n *Node) SpawnStopped(prog Program, env *Env) *Process {
	p := n.Spawn(prog, env)
	if p != nil {
		p.stopped = true
	}
	return p
}

func (n *Node) procExited(p *Process) {
	delete(n.procs, p.RPID)
	// Lazy removal from the run queue: the dispatcher skips exited
	// processes.
}

// Remove detaches a live process from the node without running exit
// hooks (used when a pod is destroyed after a migration checkpoint: the
// process state has been saved; its sockets die with the pod's stack).
func (n *Node) Remove(p *Process) {
	p.clearWaits()
	p.status = StatusExited
	delete(n.procs, p.RPID)
}

// enqueue makes p runnable if it is eligible and not already queued.
func (n *Node) enqueue(p *Process) {
	if p.status != StatusReady || p.stopped || p.queued || n.failed {
		return
	}
	p.queued = true
	n.runq = append(n.runq, p)
	n.dispatch()
}

// dispatch assigns idle CPUs to queued processes. Execution is deferred
// through the event queue so that a Step never runs nested inside
// another event callback (e.g. a socket notification).
func (n *Node) dispatch() {
	for n.running < n.cpus && len(n.runq) > 0 {
		p := n.runq[0]
		n.runq = n.runq[1:]
		p.queued = false
		if p.status != StatusReady || p.stopped {
			continue
		}
		n.running++
		n.w.After(0, func() { n.execute(p) })
	}
}

func (n *Node) execute(p *Process) {
	if n.failed || p.status != StatusReady || p.stopped {
		n.running--
		n.dispatch()
		return
	}
	p.status = StatusRunning
	ctx := &Context{proc: p, node: n}
	res := p.Prog.Step(ctx)
	cost := res.Cost + ctx.extra
	if cost < minStepCost {
		cost = minStepCost
	}
	p.cpuTime += cost
	n.w.After(cost, func() { n.complete(p, res) })
}

func (n *Node) complete(p *Process, res StepResult) {
	n.running--
	defer n.dispatch()
	if n.failed || p.status == StatusExited {
		return
	}
	switch {
	case res.Exit:
		p.exit(res.ExitCode)
	case res.Block:
		n.block(p, res)
	default:
		p.status = StatusReady
		n.enqueue(p)
	}
}

// block parks a process on its wait set, unless a waited condition
// already holds (the readiness may have changed during the step's cost
// window).
func (n *Node) block(p *Process, res StepResult) {
	p.status = StatusBlocked
	p.waitFDs = res.WaitFDs
	if n.waitSatisfied(p) {
		p.waitFDs = nil
		p.status = StatusReady
		n.enqueue(p)
		return
	}
	for _, wfd := range res.WaitFDs {
		if s, ok := p.fds[wfd.FD]; ok {
			s.SetNotify(func() { n.recheckBlocked(p) })
		}
	}
	if res.WaitTimeout > 0 {
		p.hasTimer = true
		p.deadline = n.w.Now() + sim.Time(res.WaitTimeout)
		p.waitEv = n.w.After(res.WaitTimeout, func() { n.wake(p) })
	} else if len(res.WaitFDs) == 0 {
		// Blocking on nothing would hang forever; treat as yield.
		p.status = StatusReady
		n.enqueue(p)
	}
}

// waitSatisfied reports whether any waited FD is ready per its mask (a
// pending socket error always counts as ready, as poll(2) does).
func (n *Node) waitSatisfied(p *Process) bool {
	for _, wfd := range p.waitFDs {
		s, ok := p.fds[wfd.FD]
		if !ok {
			return true // descriptor vanished: wake to observe EBADF
		}
		m := s.Poll()
		if m&wfd.Mask != 0 || m&netstack.PollErr != 0 {
			return true
		}
	}
	return false
}

// recheckBlocked is the wait-queue callback: wake the process if its
// condition now holds.
func (n *Node) recheckBlocked(p *Process) {
	if p.status != StatusBlocked {
		return
	}
	if n.waitSatisfied(p) {
		n.wake(p)
	}
}

func (n *Node) wake(p *Process) {
	if p.status != StatusBlocked {
		return
	}
	p.clearWaits()
	p.status = StatusReady
	n.enqueue(p)
}

// RestoreBlockedAsReady is used by restart: every restored process
// resumes in the ready state and re-issues its blocking syscall, whose
// explicit state machine makes the retry idempotent.
func (n *Node) RestoreBlockedAsReady(p *Process) {
	if p.status == StatusBlocked {
		p.clearWaits()
		p.status = StatusReady
	}
	if !p.stopped {
		n.enqueue(p)
	}
}
