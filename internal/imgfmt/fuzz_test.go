package imgfmt

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"testing"
)

// exhaust walks every field of a decoder recursively, exercising Peek,
// typed reads and Skip. It must return an error or reach the end of the
// stream — never panic — whatever bytes the decoder was built over.
func exhaust(t *testing.T, d *Decoder, depth int) error {
	if depth > 64 {
		return nil // deeply nested sections are legal; bound the walk
	}
	for d.More() {
		tag, typ, err := d.Peek()
		if err != nil {
			return err
		}
		switch typ {
		case TypeUint:
			_, err = d.Uint(tag)
		case TypeInt:
			_, err = d.Int(tag)
		case TypeBytes:
			_, err = d.Bytes(tag)
		case TypeString:
			_, err = d.String(tag)
		case TypeBool:
			_, err = d.Bool(tag)
		case TypeFloat64:
			_, err = d.Float64(tag)
		case TypeSection:
			var sec *Decoder
			sec, err = d.Section(tag)
			if err == nil {
				err = exhaust(t, sec, depth+1)
			}
		default:
			err = d.Skip()
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// exhaustStream walks every field of a streaming decoder, mirroring
// exhaust for the io.Reader form.
func exhaustStream(t *testing.T, d *StreamDecoder) {
	for i := 0; i < 1<<16; i++ { // bound the walk against pathological streams
		tag, typ, err := d.Peek()
		if err != nil {
			return
		}
		switch typ {
		case TypeUint:
			_, err = d.Uint(tag)
		case TypeInt:
			_, err = d.Int(tag)
		case TypeBytes:
			_, err = d.Bytes(tag)
		case TypeString:
			_, err = d.String(tag)
		case TypeBool:
			_, err = d.Bool(tag)
		case TypeFloat64:
			_, err = d.Float64(tag)
		case TypeSection:
			var sec *Decoder
			sec, err = d.Section(tag)
			if err == nil {
				err = exhaust(t, sec, 0)
			}
		default:
			err = d.Skip()
		}
		if err != nil {
			return
		}
	}
}

// FuzzDecode feeds arbitrary bytes to the decoder entry points and the
// full field walk. Decoding must never panic: malformed input may only
// produce errors.
func FuzzDecode(f *testing.F) {
	// Seed with a well-formed image...
	e := NewEncoder()
	e.Uint(1, 42)
	e.String(2, "pod")
	e.Begin(3)
	e.Bytes(1, []byte{1, 2, 3})
	e.Bool(2, true)
	e.End()
	e.Float64(4, 3.14)
	f.Add(e.Finish())
	// ...a well-formed delta record...
	de := NewDeltaEncoder()
	de.Int(1, -7)
	f.Add(de.Finish())
	// ...and a few deliberately broken inputs.
	f.Add([]byte(Magic))
	f.Add([]byte(DeltaMagic + "\x01"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 32))
	// Chunked v2 seeds: a valid framed stream, a truncated frame, a
	// frame with a corrupt chunk CRC, and a frame declaring a huge
	// payload length.
	var v2 bytes.Buffer
	s2 := NewStreamEncoder(&v2)
	s2.Uint(1, 42)
	s2.Bytes(2, bytes.Repeat([]byte{0xab}, DefaultChunk+33))
	s2.String(3, "pod")
	if err := s2.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(v2.Bytes())
	f.Add(v2.Bytes()[:len(v2.Bytes())/2])
	crcFlip := append([]byte(nil), v2.Bytes()...)
	crcFlip[len(crcFlip)-2] ^= 0xff
	f.Add(crcFlip)
	huge := appendUvarint([]byte(Magic), StreamVersion)
	huge = appendUvarint(huge, 1<<40)
	f.Add(append(huge, 0xde, 0xad, 0xbe, 0xef))

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, mk := range []func([]byte) (*Decoder, error){
			NewDecoder,
			NewDeltaDecoder,
			func(b []byte) (*Decoder, error) { d, _, err := DecodeAny(b); return d, err },
		} {
			d, err := mk(data)
			if err != nil {
				continue
			}
			_ = exhaust(t, d, 0)
		}
		// The streaming decoder must be equally panic-free on arbitrary
		// bytes of either version.
		if sd, err := NewStreamDecoder(bytes.NewReader(data)); err == nil {
			exhaustStream(t, sd)
		}
		// A raw section decoder over arbitrary bytes (a corrupted nested
		// body whose outer CRC happened to pass) must not panic either.
		if len(data) > 4 {
			body := data[:len(data)-4]
			var trailer [4]byte
			binary.LittleEndian.PutUint32(trailer[:], crc32.ChecksumIEEE(body))
			patched := append(append([]byte(nil), body...), trailer[:]...)
			if d, _, err := DecodeAny(patched); err == nil {
				_ = exhaust(t, d, 0)
			}
		}
	})
}

// FuzzRoundTrip encodes a deterministic field mix derived from the fuzz
// input and asserts the decoder returns every value bit-exactly, for
// both stream kinds and for section-encoder splicing.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(7), int64(-9), []byte("abc"), "name", true, 2.5, false)
	f.Add(uint64(0), int64(0), []byte{}, "", false, math.Inf(-1), true)
	f.Add(^uint64(0), int64(math.MinInt64), bytes.Repeat([]byte{0xaa}, 300), "π∂", true, math.NaN(), false)

	f.Fuzz(func(t *testing.T, u uint64, i int64, bs []byte, s string, b bool, fl float64, delta bool) {
		mkEnc := NewEncoder
		mkDec := NewDecoder
		if delta {
			mkEnc = NewDeltaEncoder
			mkDec = NewDeltaDecoder
		}
		e := mkEnc()
		e.Uint(1, u)
		e.Int(2, i)
		e.Bytes(3, bs)
		e.String(4, s)
		e.Bool(5, b)
		e.Float64(6, fl)
		// Same fields again inside a section, once via Begin/End and once
		// via a separately encoded body spliced with RawSection; both
		// spellings must produce identical bytes.
		e.Begin(7)
		e.Uint(1, u)
		e.String(2, s)
		e.End()
		se := NewSectionEncoder()
		se.Uint(1, u)
		se.String(2, s)
		e.RawSection(7, se.Body())
		img := e.Finish()

		d, err := mkDec(img)
		if err != nil {
			t.Fatalf("decode freshly encoded image: %v", err)
		}
		gu, err := d.Uint(1)
		if err != nil || gu != u {
			t.Fatalf("uint: got %d,%v want %d", gu, err, u)
		}
		gi, err := d.Int(2)
		if err != nil || gi != i {
			t.Fatalf("int: got %d,%v want %d", gi, err, i)
		}
		gbs, err := d.Bytes(3)
		if err != nil || !bytes.Equal(gbs, bs) {
			t.Fatalf("bytes: got %x,%v want %x", gbs, err, bs)
		}
		gs, err := d.String(4)
		if err != nil || gs != s {
			t.Fatalf("string: got %q,%v want %q", gs, err, s)
		}
		gb, err := d.Bool(5)
		if err != nil || gb != b {
			t.Fatalf("bool: got %v,%v want %v", gb, err, b)
		}
		gf, err := d.Float64(6)
		if err != nil || math.Float64bits(gf) != math.Float64bits(fl) {
			t.Fatalf("float: got %v,%v want %v", gf, err, fl)
		}
		var bodies [][]byte
		for k := 0; k < 2; k++ {
			sec, err := d.Section(7)
			if err != nil {
				t.Fatalf("section %d: %v", k, err)
			}
			bodies = append(bodies, sec.data)
			su, err := sec.Uint(1)
			if err != nil || su != u {
				t.Fatalf("section uint: got %d,%v want %d", su, err, u)
			}
			ss, err := sec.String(2)
			if err != nil || ss != s {
				t.Fatalf("section string: got %q,%v want %q", ss, err, s)
			}
		}
		if !bytes.Equal(bodies[0], bodies[1]) {
			t.Fatalf("Begin/End and RawSection bodies differ: %x vs %x", bodies[0], bodies[1])
		}
		if d.More() {
			t.Fatal("trailing fields after round trip")
		}
	})
}
