package imgfmt

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTripScalars(t *testing.T) {
	e := NewEncoder()
	e.Uint(1, 42)
	e.Int(2, -7)
	e.String(3, "pod-a")
	e.Bytes(4, []byte{0, 1, 2, 255})
	e.Bool(5, true)
	e.Bool(6, false)
	e.Float64(7, 3.14159)
	img := e.Finish()

	d, err := NewDecoder(img)
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	if v, err := d.Uint(1); err != nil || v != 42 {
		t.Fatalf("Uint = %d, %v", v, err)
	}
	if v, err := d.Int(2); err != nil || v != -7 {
		t.Fatalf("Int = %d, %v", v, err)
	}
	if v, err := d.String(3); err != nil || v != "pod-a" {
		t.Fatalf("String = %q, %v", v, err)
	}
	if v, err := d.Bytes(4); err != nil || !bytes.Equal(v, []byte{0, 1, 2, 255}) {
		t.Fatalf("Bytes = %v, %v", v, err)
	}
	if v, err := d.Bool(5); err != nil || v != true {
		t.Fatalf("Bool(5) = %v, %v", v, err)
	}
	if v, err := d.Bool(6); err != nil || v != false {
		t.Fatalf("Bool(6) = %v, %v", v, err)
	}
	if v, err := d.Float64(7); err != nil || v != 3.14159 {
		t.Fatalf("Float64 = %v, %v", v, err)
	}
	if d.More() {
		t.Fatal("decoder should be exhausted")
	}
}

func TestNestedSections(t *testing.T) {
	e := NewEncoder()
	e.Begin(10)
	e.Uint(1, 1)
	e.Begin(11)
	e.String(2, "inner")
	e.End()
	e.Uint(3, 3)
	e.End()
	e.Uint(20, 99)
	img := e.Finish()

	d, err := NewDecoder(img)
	if err != nil {
		t.Fatal(err)
	}
	sec, err := d.Section(10)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := sec.Uint(1); v != 1 {
		t.Fatalf("sec.Uint(1) = %d", v)
	}
	inner, err := sec.Section(11)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := inner.String(2); v != "inner" {
		t.Fatalf("inner = %q", v)
	}
	if v, _ := sec.Uint(3); v != 3 {
		t.Fatalf("sec.Uint(3) = %d", v)
	}
	if v, _ := d.Uint(20); v != 99 {
		t.Fatalf("outer Uint(20) = %d", v)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	e := NewEncoder()
	e.Uint(1, 12345)
	img := e.Finish()
	img[len(Magic)+2] ^= 0x40
	if _, err := NewDecoder(img); err != ErrBadChecksum {
		t.Fatalf("want ErrBadChecksum, got %v", err)
	}
}

func TestTruncatedImage(t *testing.T) {
	e := NewEncoder()
	e.Bytes(1, make([]byte, 100))
	img := e.Finish()
	if _, err := NewDecoder(img[:5]); err == nil {
		t.Fatal("want error for truncated image")
	}
}

func TestTagMismatch(t *testing.T) {
	e := NewEncoder()
	e.Uint(1, 5)
	img := e.Finish()
	d, _ := NewDecoder(img)
	if _, err := d.Uint(2); err == nil {
		t.Fatal("want tag mismatch error")
	}
}

func TestTypeMismatch(t *testing.T) {
	e := NewEncoder()
	e.Uint(1, 5)
	img := e.Finish()
	d, _ := NewDecoder(img)
	if _, err := d.String(1); err == nil {
		t.Fatal("want type mismatch error")
	}
}

func TestSkipUnknownFields(t *testing.T) {
	e := NewEncoder()
	e.Uint(1, 5)
	e.String(2, "skip me")
	e.Begin(3)
	e.Float64(4, 2.5)
	e.End()
	e.Bool(5, true)
	e.Uint(6, 6)
	img := e.Finish()

	d, _ := NewDecoder(img)
	if _, err := d.Uint(1); err != nil {
		t.Fatal(err)
	}
	// Skip the string, section, and bool we "don't understand".
	for i := 0; i < 3; i++ {
		if err := d.Skip(); err != nil {
			t.Fatalf("Skip %d: %v", i, err)
		}
	}
	if v, err := d.Uint(6); err != nil || v != 6 {
		t.Fatalf("Uint(6) = %d, %v", v, err)
	}
}

func TestPeek(t *testing.T) {
	e := NewEncoder()
	e.String(7, "x")
	img := e.Finish()
	d, _ := NewDecoder(img)
	tag, typ, err := d.Peek()
	if err != nil || tag != 7 || typ != TypeString {
		t.Fatalf("Peek = %d, %d, %v", tag, typ, err)
	}
	// Peek must not consume.
	if v, err := d.String(7); err != nil || v != "x" {
		t.Fatalf("String after Peek = %q, %v", v, err)
	}
}

func TestPeekAtEnd(t *testing.T) {
	e := NewEncoder()
	img := e.Finish()
	d, _ := NewDecoder(img)
	if _, _, err := d.Peek(); err != ErrEndOfSection {
		t.Fatalf("want ErrEndOfSection, got %v", err)
	}
}

func TestEncoderLen(t *testing.T) {
	e := NewEncoder()
	before := e.Len()
	e.Bytes(1, make([]byte, 1000))
	if got := e.Len(); got < before+1000 {
		t.Fatalf("Len = %d, want >= %d", got, before+1000)
	}
}

// Property: any sequence of (uint, int, string, bytes, float) tuples survives
// an encode/decode round trip bit-exactly.
func TestQuickRoundTrip(t *testing.T) {
	f := func(us []uint64, is []int64, ss []string, bs [][]byte, fs []float64) bool {
		e := NewEncoder()
		for _, v := range us {
			e.Uint(1, v)
		}
		for _, v := range is {
			e.Int(2, v)
		}
		for _, v := range ss {
			e.String(3, v)
		}
		for _, v := range bs {
			e.Bytes(4, v)
		}
		for _, v := range fs {
			e.Float64(5, v)
		}
		d, err := NewDecoder(e.Finish())
		if err != nil {
			return false
		}
		for _, v := range us {
			got, err := d.Uint(1)
			if err != nil || got != v {
				return false
			}
		}
		for _, v := range is {
			got, err := d.Int(2)
			if err != nil || got != v {
				return false
			}
		}
		for _, v := range ss {
			got, err := d.String(3)
			if err != nil || got != v {
				return false
			}
		}
		for _, v := range bs {
			got, err := d.Bytes(4)
			if err != nil || !bytes.Equal(got, v) {
				return false
			}
		}
		for _, v := range fs {
			got, err := d.Float64(5)
			if err != nil {
				return false
			}
			if got != v && !(math.IsNaN(got) && math.IsNaN(v)) {
				return false
			}
		}
		return !d.More()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: random garbage never makes NewDecoder succeed with a valid
// checksum unless it actually is a valid image; and never panics.
func TestQuickGarbageNoPanics(t *testing.T) {
	f := func(b []byte) bool {
		d, err := NewDecoder(b)
		if err != nil {
			return true
		}
		// If it decoded, walking all fields must not panic.
		for d.More() {
			if err := d.Skip(); err != nil {
				return true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDeepNesting(t *testing.T) {
	e := NewEncoder()
	const depth = 100
	for i := 0; i < depth; i++ {
		e.Begin(uint64(i + 1))
	}
	e.Uint(999, 7)
	for i := 0; i < depth; i++ {
		e.End()
	}
	d, err := NewDecoder(e.Finish())
	if err != nil {
		t.Fatal(err)
	}
	cur := d
	for i := 0; i < depth; i++ {
		var err error
		cur, err = cur.Section(uint64(i + 1))
		if err != nil {
			t.Fatalf("depth %d: %v", i, err)
		}
	}
	if v, err := cur.Uint(999); err != nil || v != 7 {
		t.Fatalf("leaf = %d, %v", v, err)
	}
}
