package imgfmt

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// incompressible returns n bytes of seeded pseudo-random data — the
// worst case for the per-frame heuristic, which must fall back to RAW.
func incompressible(seed int64, n int) []byte {
	r := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	r.Read(b)
	return b
}

// sparse returns n bytes with one non-zero byte per 64-byte stride —
// the shape of the churn app's hot region, highly compressible.
func sparse(n int) []byte {
	b := make([]byte, n)
	for i := 0; i < n; i += 64 {
		b[i] = byte(i/64 + 1)
	}
	return b
}

func buildV3(t *testing.T, o StreamOpts, big []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	e := NewStreamEncoderOpts(&buf, o)
	e.String(1, "pod-0")
	e.Uint(2, 0x0a000001)
	e.Bytes(5, big)
	e.Float64(6, 2.75)
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return buf.Bytes()
}

func decodeV3(t *testing.T, data, big []byte) {
	t.Helper()
	d, err := NewStreamDecoder(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("new decoder: %v", err)
	}
	if d.Version() != StreamVersion3 || d.IsDelta() {
		t.Fatalf("version=%d delta=%v", d.Version(), d.IsDelta())
	}
	if s, err := d.String(1); err != nil || s != "pod-0" {
		t.Fatalf("string: %q %v", s, err)
	}
	if v, err := d.Uint(2); err != nil || v != 0x0a000001 {
		t.Fatalf("uint: %d %v", v, err)
	}
	got, err := d.Bytes(5)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("bytes: %d bytes, %v (want %d)", len(got), err, len(big))
	}
	if v, err := d.Float64(6); err != nil || v != 2.75 {
		t.Fatalf("float: %v %v", v, err)
	}
	if err := d.Finished(); err != nil {
		t.Fatalf("finished: %v", err)
	}
}

// TestStreamRoundTripV3 round-trips a multi-frame record through the
// default (version-3, compressing) encoder and demands the compressible
// payload actually shrank on the wire.
func TestStreamRoundTripV3(t *testing.T) {
	big := sparse(3*DefaultChunk + 100)
	enc := buildV3(t, StreamOpts{}, big)
	decodeV3(t, enc, big)
	if len(enc) >= len(big)/2 {
		t.Fatalf("sparse payload did not compress: %d wire bytes for %d raw", len(enc), len(big))
	}
}

// TestStreamRoundTripV3Incompressible: pseudo-random payloads must ride
// through as RAW frames — bit-exact, and at most a few framing bytes of
// overhead over the raw size.
func TestStreamRoundTripV3Incompressible(t *testing.T) {
	big := incompressible(1, 2*DefaultChunk+57)
	enc := buildV3(t, StreamOpts{}, big)
	decodeV3(t, enc, big)
	if overhead := len(enc) - len(big); overhead > 256 {
		t.Fatalf("incompressible payload bloated by %d bytes", overhead)
	}
}

// TestV3NoCompress: the NoCompress option stores every frame RAW; the
// stream stays version 3, decodes identically, and is no smaller than
// the logical payload.
func TestV3NoCompress(t *testing.T) {
	big := sparse(2 * DefaultChunk)
	raw := buildV3(t, StreamOpts{NoCompress: true}, big)
	decodeV3(t, raw, big)
	comp := buildV3(t, StreamOpts{}, big)
	if len(raw) <= len(comp) {
		t.Fatalf("NoCompress output (%d bytes) not larger than compressed (%d)", len(raw), len(comp))
	}
	if len(raw) < len(big) {
		t.Fatalf("NoCompress output (%d bytes) smaller than its payload (%d)", len(raw), len(big))
	}
}

// TestV3Deterministic: encoding the same logical record twice yields
// byte-identical output — the per-frame decision is a pure function of
// the frame bytes.
func TestV3Deterministic(t *testing.T) {
	big := append(sparse(DefaultChunk), incompressible(2, DefaultChunk)...)
	a := buildV3(t, StreamOpts{}, big)
	b := buildV3(t, StreamOpts{}, big)
	if !bytes.Equal(a, b) {
		t.Fatal("two identical v3 encodes differ")
	}
}

// TestV3CorruptNamesFrame flips a byte inside the second frame's stored
// bytes and demands a checksum-class error that names the frame.
func TestV3CorruptNamesFrame(t *testing.T) {
	big := sparse(3 * DefaultChunk)
	enc := buildV3(t, StreamOpts{}, big)
	bad := append([]byte(nil), enc...)
	bad[len(bad)/2] ^= 0x20
	d, err := NewStreamDecoder(bytes.NewReader(bad))
	if err != nil {
		t.Fatalf("header should still parse: %v", err)
	}
	for err == nil {
		_, _, err = d.Peek()
		if err == nil {
			err = d.Skip()
		}
	}
	if errors.Is(err, ErrEndOfSection) {
		err = d.Finished()
	}
	if !errors.Is(err, ErrBadChecksum) && !errors.Is(err, ErrTruncated) {
		t.Fatalf("want a checksum/truncation error, got %v", err)
	}
	if errors.Is(err, ErrFrame) && !strings.Contains(err.Error(), "frame") {
		t.Fatalf("frame error does not name the frame: %v", err)
	}
}

// TestV3BadStoredLength hand-builds an LZ4 frame whose stored length is
// not strictly smaller than its raw length; the decoder must reject it
// as a framing error naming the frame, before any decompression.
func TestV3BadStoredLength(t *testing.T) {
	hdr := appendUvarint([]byte(Magic), StreamVersion3)
	frame := appendUvarint(nil, 16)  // rawLen 16
	frame = append(frame, FrameLZ4)  // compressed style
	frame = appendUvarint(frame, 16) // storedLen == rawLen: illegal
	frame = append(frame, make([]byte, 20)...)
	d, err := NewStreamDecoder(bytes.NewReader(append(hdr, frame...)))
	if err != nil {
		t.Fatalf("header: %v", err)
	}
	_, _, err = d.Peek()
	if !errors.Is(err, ErrFrame) || !strings.Contains(err.Error(), "frame 1") {
		t.Fatalf("want ErrFrame naming frame 1, got %v", err)
	}
}

// TestV3BadStyle: an unknown frame style byte is a framing error naming
// the frame.
func TestV3BadStyle(t *testing.T) {
	hdr := appendUvarint([]byte(Magic), StreamVersion3)
	frame := appendUvarint(nil, 4)
	frame = append(frame, 0x7f) // unknown style
	frame = append(frame, make([]byte, 8)...)
	d, err := NewStreamDecoder(bytes.NewReader(append(hdr, frame...)))
	if err != nil {
		t.Fatalf("header: %v", err)
	}
	_, _, err = d.Peek()
	if !errors.Is(err, ErrFrame) || !strings.Contains(err.Error(), "frame 1") {
		t.Fatalf("want ErrFrame naming frame 1, got %v", err)
	}
}

// TestV3TruncatedAlwaysErrors mirrors the v2 truncation sweep: cutting a
// v3 stream at any byte must error, never hang or succeed.
func TestV3TruncatedAlwaysErrors(t *testing.T) {
	big := sparse(DefaultChunk + 517)
	whole := buildV3(t, StreamOpts{}, big)
	walk := func(data []byte) error {
		d, err := NewStreamDecoder(bytes.NewReader(data))
		if err != nil {
			return err
		}
		if _, err := d.String(1); err != nil {
			return err
		}
		if _, err := d.Uint(2); err != nil {
			return err
		}
		if _, err := d.Bytes(5); err != nil {
			return err
		}
		if _, err := d.Float64(6); err != nil {
			return err
		}
		return d.Finished()
	}
	if err := walk(whole); err != nil {
		t.Fatalf("intact stream: %v", err)
	}
	for cut := 0; cut < len(whole); cut++ {
		if err := walk(whole[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded successfully", cut, len(whole))
		}
	}
}

// TestV3DecodesAllVersions: the same logical record written as v1
// (buffered), v2, and v3 decodes to the same field values through the
// one streaming decoder — the version sniffing matrix.
func TestV3DecodesAllVersions(t *testing.T) {
	big := sparse(DefaultChunk / 2)
	e1 := NewEncoder()
	e1.String(1, "pod-0")
	e1.Uint(2, 0x0a000001)
	e1.Bytes(5, big)
	e1.Float64(6, 2.75)
	v1 := e1.Finish()

	streams := map[string][]byte{
		"v2": buildV2(t, big),
		"v3": buildV3(t, StreamOpts{}, big),
	}
	for name, data := range streams {
		d, err := NewStreamDecoder(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s, _ := d.String(1); s != "pod-0" {
			t.Fatalf("%s: wrong pod", name)
		}
	}
	d, err := NewStreamDecoder(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("v1: %v", err)
	}
	if d.Version() != Version {
		t.Fatalf("v1 sniffed as %d", d.Version())
	}
	if s, _ := d.String(1); s != "pod-0" {
		t.Fatal("v1: wrong pod")
	}
}

// TestLZ4BlockRoundTrip exercises the codec directly across payload
// shapes: runs, periodic patterns, overlapping-match territory, and
// incompressible noise (which must be declined, not bloated).
func TestLZ4BlockRoundTrip(t *testing.T) {
	cases := map[string][]byte{
		"zeros":     make([]byte, 4096),
		"runs":      bytes.Repeat([]byte{7}, 300),
		"periodic":  bytes.Repeat([]byte{1, 2, 3}, 1000),
		"sparse":    sparse(8192),
		"text":      bytes.Repeat([]byte("the quick brown fox "), 64),
		"short-run": append(bytes.Repeat([]byte{9}, 70), 1, 2, 3),
		"stride-257": func() []byte {
			b := make([]byte, 4096)
			for i := range b {
				b[i] = byte(i % 257)
			}
			return b
		}(),
	}
	for name, src := range cases {
		c := blockCompress(src)
		if c == nil {
			t.Fatalf("%s: compressible payload declined", name)
		}
		if len(c) >= len(src) {
			t.Fatalf("%s: compressed %d >= raw %d", name, len(c), len(src))
		}
		got, err := blockDecompress(c, len(src))
		if err != nil {
			t.Fatalf("%s: decompress: %v", name, err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("%s: round trip mismatch", name)
		}
	}
	if c := blockCompress(incompressible(3, 4096)); c != nil {
		t.Fatalf("noise accepted for compression (%d bytes)", len(c))
	}
	if c := blockCompress([]byte("tiny")); c != nil {
		t.Fatal("sub-threshold payload accepted for compression")
	}
}

// TestLZ4DecompressHostile: malformed blocks error without panicking or
// over-allocating.
func TestLZ4DecompressHostile(t *testing.T) {
	hostile := [][]byte{
		{},
		{0xF0},                   // extended literal length, no extension bytes
		{0xF0, 0xFF, 0xFF},       // extension runs past the block
		{0x10},                   // 1 literal declared, none present
		{0x0F, 0x01, 0x00},       // match with no prior output
		{0x00, 0x05, 0x00, 0x0F}, // offset beyond decoded bytes
		bytes.Repeat([]byte{0xFF}, 64),
	}
	for i, src := range hostile {
		if out, err := blockDecompress(src, 1024); err == nil {
			t.Fatalf("case %d decoded %d bytes from garbage", i, len(out))
		}
	}
	// A valid block lying about its raw length must be caught.
	c := blockCompress(sparse(1024))
	if c == nil {
		t.Fatal("seed block did not compress")
	}
	if _, err := blockDecompress(c, 1023); err == nil {
		t.Fatal("short raw length accepted")
	}
	if _, err := blockDecompress(c, 1025); err == nil {
		t.Fatal("long raw length accepted")
	}
}
