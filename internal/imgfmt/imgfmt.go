// Package imgfmt implements the portable intermediate checkpoint image
// format used by the ZapC reproduction.
//
// The paper stresses that checkpoint images record "higher-level semantic
// information specified in an intermediate format rather than kernel
// specific data in native format to keep the format portable across
// different kernels". This package is that format: a self-describing,
// stream-oriented tag-length-value encoding with nested sections, an
// explicit version header and a CRC-32 trailer. Nothing in the encoding
// depends on host endianness, word size, or in-memory layout.
//
// An image is a sequence of fields. Every field carries a caller-chosen
// numeric tag and a wire type. Sections group fields recursively, so a
// checkpoint image reads like a tree: pod -> processes -> memory regions,
// and so on. Decoders may skip fields whose tags they do not recognize,
// which is what makes the format evolvable across versions.
package imgfmt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Magic identifies a ZapC checkpoint image stream.
const Magic = "ZAPCIMG"

// DeltaMagic identifies a ZapC delta record: an incremental checkpoint
// stream whose generation N+1 encodes only state mutated since
// generation N. Delta records share the field encoding, version header
// and CRC-32 trailer with full images; only the magic differs, so a
// reader can never mistake a delta for a restartable full image.
const DeltaMagic = "ZAPCDLT"

// Version is the current encoding version written into every header.
const Version = 1

// Wire types for encoded fields.
const (
	TypeUint    = 1 // unsigned varint
	TypeInt     = 2 // zig-zag signed varint
	TypeBytes   = 3 // length-prefixed opaque bytes
	TypeString  = 4 // length-prefixed UTF-8
	TypeBool    = 5 // single byte 0/1
	TypeFloat64 = 6 // IEEE-754 bits, fixed 8 bytes little-endian
	TypeSection = 7 // length-prefixed nested field stream
)

// Common errors returned by the decoder.
var (
	ErrBadMagic     = errors.New("imgfmt: bad magic")
	ErrBadVersion   = errors.New("imgfmt: unsupported version")
	ErrBadChecksum  = errors.New("imgfmt: checksum mismatch")
	ErrTruncated    = errors.New("imgfmt: truncated input")
	ErrTypeMismatch = errors.New("imgfmt: field type mismatch")
	ErrTagMismatch  = errors.New("imgfmt: unexpected field tag")
	ErrEndOfSection = errors.New("imgfmt: end of section")
)

// Encoder builds a checkpoint image in memory. The zero value is not
// usable; create encoders with NewEncoder. Encoders are not safe for
// concurrent use.
//
// Encoder is a thin buffered wrapper over StreamEncoder: it shares the
// field encoding and section stack, buffers everything, and finishes
// with the version-1 whole-stream CRC trailer. Its output is
// byte-identical to the pre-streaming format.
type Encoder struct {
	s *StreamEncoder
}

// NewEncoder returns an encoder with the image header already written.
func NewEncoder() *Encoder {
	return &Encoder{s: newBuffered(Magic)}
}

// NewDeltaEncoder returns an encoder whose header marks the stream as a
// delta record rather than a full image.
func NewDeltaEncoder() *Encoder {
	return &Encoder{s: newBuffered(DeltaMagic)}
}

// NewSectionEncoder returns an encoder producing a bare field stream
// with no header or trailer, for use as a nested section body spliced
// into another stream via RawSection. Section bodies can therefore be
// encoded concurrently (one encoder per worker) and assembled
// deterministically afterwards.
func NewSectionEncoder() *Encoder {
	return &Encoder{s: newSection()}
}

func appendUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

func appendSvarint(b []byte, v int64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

// Uint writes an unsigned integer field.
func (e *Encoder) Uint(tag uint64, v uint64) { e.s.Uint(tag, v) }

// Int writes a signed integer field.
func (e *Encoder) Int(tag uint64, v int64) { e.s.Int(tag, v) }

// Bytes writes an opaque byte-slice field.
func (e *Encoder) Bytes(tag uint64, v []byte) { e.s.Bytes(tag, v) }

// String writes a string field.
func (e *Encoder) String(tag uint64, v string) { e.s.String(tag, v) }

// Bool writes a boolean field.
func (e *Encoder) Bool(tag uint64, v bool) { e.s.Bool(tag, v) }

// Float64 writes an IEEE-754 double field.
func (e *Encoder) Float64(tag uint64, v float64) { e.s.Float64(tag, v) }

// Begin opens a nested section with the given tag. Sections may nest to any
// depth; each Begin must be matched by an End.
func (e *Encoder) Begin(tag uint64) { e.s.Begin(tag) }

// RawSection writes a section field whose body was encoded separately
// (by a NewSectionEncoder finished with Body). The resulting bytes are
// identical to Begin + re-encoding the fields + End, which is what lets
// parallel encoders produce byte-identical images to sequential ones.
func (e *Encoder) RawSection(tag uint64, body []byte) { e.s.RawSection(tag, body) }

// Body returns the bare field stream of a section encoder (no header,
// no trailer). It is an error to call Body with open sections or on an
// encoder that has a header.
func (e *Encoder) Body() []byte { return e.s.Body() }

// End closes the innermost open section.
func (e *Encoder) End() { e.s.End() }

// Finish returns the finished image, appending the CRC-32 trailer. It is an
// error to call Finish with unclosed sections.
func (e *Encoder) Finish() []byte { return e.s.Finish() }

// Len reports the current encoded length in bytes, excluding the trailer.
func (e *Encoder) Len() int { return e.s.Len() }

// Decoder reads a checkpoint image produced by Encoder. Create decoders
// with NewDecoder (for a full image) — section decoders are produced by
// Section. Decoders are not safe for concurrent use.
type Decoder struct {
	data []byte
	off  int
}

// NewDecoder validates the header and trailer of a full image and returns a
// decoder positioned at the first field.
func NewDecoder(img []byte) (*Decoder, error) {
	d, delta, err := DecodeAny(img)
	if err != nil {
		return nil, err
	}
	if delta {
		return nil, fmt.Errorf("%w: delta record where a full image was expected", ErrBadMagic)
	}
	return d, nil
}

// NewDeltaDecoder validates the header and trailer of a delta record and
// returns a decoder positioned at the first field.
func NewDeltaDecoder(img []byte) (*Decoder, error) {
	d, delta, err := DecodeAny(img)
	if err != nil {
		return nil, err
	}
	if !delta {
		return nil, fmt.Errorf("%w: full image where a delta record was expected", ErrBadMagic)
	}
	return d, nil
}

// DecodeAny validates either stream kind, reporting whether the input is
// a delta record.
func DecodeAny(img []byte) (dec *Decoder, delta bool, err error) {
	if len(img) < len(Magic)+1+4 {
		return nil, false, ErrTruncated
	}
	body, trailer := img[:len(img)-4], img[len(img)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, false, ErrBadChecksum
	}
	switch string(body[:len(Magic)]) {
	case Magic:
	case DeltaMagic:
		delta = true
	default:
		return nil, false, ErrBadMagic
	}
	d := &Decoder{data: body, off: len(Magic)}
	v, err := d.uvarint()
	if err != nil {
		return nil, false, err
	}
	if v != Version {
		return nil, false, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	return d, delta, nil
}

func (d *Decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	d.off += n
	return v, nil
}

func (d *Decoder) svarint() (int64, error) {
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	d.off += n
	return v, nil
}

// More reports whether any fields remain in this decoder's stream.
func (d *Decoder) More() bool { return d.off < len(d.data) }

// Peek returns the tag and type of the next field without consuming it.
func (d *Decoder) Peek() (tag uint64, typ byte, err error) {
	if !d.More() {
		return 0, 0, ErrEndOfSection
	}
	save := d.off
	tag, err = d.uvarint()
	if err != nil {
		d.off = save
		return 0, 0, err
	}
	if d.off >= len(d.data) {
		d.off = save
		return 0, 0, ErrTruncated
	}
	typ = d.data[d.off]
	d.off = save
	return tag, typ, nil
}

func (d *Decoder) header(wantTag uint64, wantType byte) error {
	tag, err := d.uvarint()
	if err != nil {
		return err
	}
	if tag != wantTag {
		return fmt.Errorf("%w: got %d want %d", ErrTagMismatch, tag, wantTag)
	}
	if d.off >= len(d.data) {
		return ErrTruncated
	}
	typ := d.data[d.off]
	d.off++
	if typ != wantType {
		return fmt.Errorf("%w: tag %d got type %d want %d", ErrTypeMismatch, tag, typ, wantType)
	}
	return nil
}

// Uint reads an unsigned integer field with the given tag.
func (d *Decoder) Uint(tag uint64) (uint64, error) {
	if err := d.header(tag, TypeUint); err != nil {
		return 0, err
	}
	return d.uvarint()
}

// Int reads a signed integer field with the given tag.
func (d *Decoder) Int(tag uint64) (int64, error) {
	if err := d.header(tag, TypeInt); err != nil {
		return 0, err
	}
	return d.svarint()
}

func (d *Decoder) lengthPrefixed() ([]byte, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if uint64(len(d.data)-d.off) < n {
		return nil, ErrTruncated
	}
	v := d.data[d.off : d.off+int(n)]
	d.off += int(n)
	return v, nil
}

// Bytes reads an opaque byte-slice field with the given tag. The returned
// slice aliases the decoder's backing array; callers that retain it across
// further decoding must copy it.
func (d *Decoder) Bytes(tag uint64) ([]byte, error) {
	if err := d.header(tag, TypeBytes); err != nil {
		return nil, err
	}
	return d.lengthPrefixed()
}

// String reads a string field with the given tag.
func (d *Decoder) String(tag uint64) (string, error) {
	if err := d.header(tag, TypeString); err != nil {
		return "", err
	}
	b, err := d.lengthPrefixed()
	return string(b), err
}

// Bool reads a boolean field with the given tag.
func (d *Decoder) Bool(tag uint64) (bool, error) {
	if err := d.header(tag, TypeBool); err != nil {
		return false, err
	}
	if d.off >= len(d.data) {
		return false, ErrTruncated
	}
	v := d.data[d.off]
	d.off++
	return v != 0, nil
}

// Float64 reads an IEEE-754 double field with the given tag.
func (d *Decoder) Float64(tag uint64) (float64, error) {
	if err := d.header(tag, TypeFloat64); err != nil {
		return 0, err
	}
	if len(d.data)-d.off < 8 {
		return 0, ErrTruncated
	}
	bits := binary.LittleEndian.Uint64(d.data[d.off:])
	d.off += 8
	return math.Float64frombits(bits), nil
}

// Section reads a nested section field with the given tag and returns a
// decoder over its contents.
func (d *Decoder) Section(tag uint64) (*Decoder, error) {
	if err := d.header(tag, TypeSection); err != nil {
		return nil, err
	}
	body, err := d.lengthPrefixed()
	if err != nil {
		return nil, err
	}
	return &Decoder{data: body}, nil
}

// Skip consumes the next field regardless of tag or type. It allows decoders
// to ignore fields introduced by newer encoders.
func (d *Decoder) Skip() error {
	if _, err := d.uvarint(); err != nil {
		return err
	}
	if d.off >= len(d.data) {
		return ErrTruncated
	}
	typ := d.data[d.off]
	d.off++
	switch typ {
	case TypeUint:
		_, err := d.uvarint()
		return err
	case TypeInt:
		_, err := d.svarint()
		return err
	case TypeBytes, TypeString, TypeSection:
		_, err := d.lengthPrefixed()
		return err
	case TypeBool:
		if d.off >= len(d.data) {
			return ErrTruncated
		}
		d.off++
		return nil
	case TypeFloat64:
		if len(d.data)-d.off < 8 {
			return ErrTruncated
		}
		d.off += 8
		return nil
	default:
		return fmt.Errorf("imgfmt: unknown wire type %d", typ)
	}
}
