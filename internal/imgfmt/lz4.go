// LZ4-style block codec for version-3 frames.
//
// Each version-3 frame is independently either RAW or block-compressed,
// so the codec here is a self-contained single-block format with no
// cross-frame state: compression of a frame is a pure function of that
// frame's payload bytes, which is what makes v3 output bit-identical
// regardless of worker count or IO mode.
//
// The block format is the classic LZ4 sequence stream: each sequence is
// a token byte (high nibble literal length, low nibble match length
// minus 4, 15 meaning "extended by 255-run bytes"), the literals, a
// 2-byte little-endian match offset, and any match-length extension
// bytes. The final sequence carries literals only (no offset); the
// block ends exactly there. Matches may overlap their own output
// (offset < length), which encodes runs.
//
// Everything is hand-rolled on the standard library only — the image
// format takes no dependencies — and the decompressor is fully
// bounds-checked: hostile input yields an error, never a panic or an
// allocation beyond the declared raw size.
package imgfmt

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Frame styles for version-3 frames.
const (
	// FrameRaw tags a frame stored uncompressed.
	FrameRaw = 0x00
	// FrameLZ4 tags a frame stored LZ4-style block-compressed.
	FrameLZ4 = 0x01
)

const (
	// minMatch is the shortest back-reference worth encoding (the
	// token's match nibble is biased by it).
	minMatch = 4
	// minCompressSrc is the compressibility heuristic's floor: frames
	// smaller than this are stored RAW without attempting compression —
	// the per-sequence overhead cannot win on them.
	minCompressSrc = 64
	// hashLog sizes the match-finder table (1<<hashLog entries).
	hashLog = 13
	// maxOffset is the farthest back a 2-byte offset can reach.
	maxOffset = 65535
)

func hash4(u uint32) uint32 { return (u * 2654435761) >> (32 - hashLog) }

func load32(b []byte, i int) uint32 { return binary.LittleEndian.Uint32(b[i:]) }

// blockCompress compresses one frame payload, returning nil when the
// frame is not worth compressing: too small to ever win, or the encoded
// form would not be strictly smaller than the RAW form once the
// compressed-length prefix is accounted for. Returning nil (not a
// bigger block) IS the per-frame RAW/compressed decision: the encoder
// stores exactly what this function hands back, so the choice is a pure
// function of the payload bytes.
func blockCompress(src []byte) []byte {
	n := len(src)
	if n < minCompressSrc || n > MaxFrame {
		return nil
	}
	// The RAW frame body costs n bytes; the compressed body costs
	// len(dst) plus its uvarint length prefix (≤3 bytes for any frame
	// under MaxFrame). Bail as soon as the win becomes impossible.
	bound := n - 4
	dst := make([]byte, 0, n)
	var table [1 << hashLog]int32 // position+1 of a recent 4-byte sequence
	anchor := 0                   // start of the pending literal run
	misses := 0                   // consecutive failed probes, drives skip acceleration
	for i := 0; i+minMatch <= n; {
		h := hash4(load32(src, i))
		cand := int(table[h]) - 1
		table[h] = int32(i) + 1
		if cand < 0 || i-cand > maxOffset || load32(src, cand) != load32(src, i) {
			misses++
			i += 1 + misses>>6 // skip faster through incompressible regions
			continue
		}
		misses = 0
		m, c := i+minMatch, cand+minMatch
		for m < n && src[m] == src[c] {
			m++
			c++
		}
		dst = appendSeq(dst, src[anchor:i], i-cand, m-i)
		if len(dst) > bound {
			return nil
		}
		i, anchor = m, m
	}
	dst = appendSeq(dst, src[anchor:], 0, 0) // final literal-only sequence
	if len(dst) > bound {
		return nil
	}
	return dst
}

// appendSeq appends one sequence: token, extended literal length,
// literals, and — unless this is the final literal-only sequence
// (matchLen 0) — the match offset and extended match length.
func appendSeq(dst, lits []byte, offset, matchLen int) []byte {
	lit := len(lits)
	var token byte
	if lit >= 15 {
		token = 0xF0
	} else {
		token = byte(lit) << 4
	}
	ml := 0
	if matchLen > 0 {
		ml = matchLen - minMatch
		if ml >= 15 {
			token |= 0x0F
		} else {
			token |= byte(ml)
		}
	}
	dst = append(dst, token)
	if lit >= 15 {
		dst = appendLenExt(dst, lit-15)
	}
	dst = append(dst, lits...)
	if matchLen == 0 {
		return dst
	}
	dst = append(dst, byte(offset), byte(offset>>8))
	if ml >= 15 {
		dst = appendLenExt(dst, ml-15)
	}
	return dst
}

// appendLenExt appends a 255-run extension for lengths past the nibble.
func appendLenExt(dst []byte, v int) []byte {
	for v >= 255 {
		dst = append(dst, 255)
		v -= 255
	}
	return append(dst, byte(v))
}

// readLenExt reads a 255-run length extension starting at src[i],
// returning the value and the next read position. The running value is
// capped at MaxFrame so a hostile run of 255s cannot manufacture a
// huge length.
func readLenExt(src []byte, i int) (int, int, error) {
	v := 0
	for {
		if i >= len(src) {
			return 0, 0, errors.New("lz4: truncated length extension")
		}
		b := src[i]
		i++
		v += int(b)
		if v > MaxFrame {
			return 0, 0, errors.New("lz4: length extension overflow")
		}
		if b < 255 {
			return v, i, nil
		}
	}
}

// blockDecompress expands one compressed frame body to exactly rawLen
// bytes. Every length and offset is validated against the bytes that
// actually arrived; malformed input returns an error and never panics
// or allocates more than rawLen.
func blockDecompress(src []byte, rawLen int) ([]byte, error) {
	if rawLen < 0 || rawLen > MaxFrame {
		return nil, fmt.Errorf("lz4: bad raw length %d", rawLen)
	}
	// Size the initial allocation by what the input could plausibly
	// expand to (a length-extension byte yields at most 255 output
	// bytes), so a tiny hostile block declaring a huge raw size cannot
	// force a large allocation up front. append regrows if a legitimate
	// block really does expand further.
	cap0 := rawLen
	if max := len(src) * 255; cap0 > max {
		cap0 = max
	}
	dst := make([]byte, 0, cap0)
	i := 0
	for {
		if i >= len(src) {
			return nil, errors.New("lz4: truncated block")
		}
		token := src[i]
		i++
		lit := int(token >> 4)
		if lit == 15 {
			ext, ni, err := readLenExt(src, i)
			if err != nil {
				return nil, err
			}
			lit, i = lit+ext, ni
		}
		if lit > len(src)-i {
			return nil, errors.New("lz4: literal run past end of block")
		}
		if len(dst)+lit > rawLen {
			return nil, errors.New("lz4: output overruns declared raw size")
		}
		dst = append(dst, src[i:i+lit]...)
		i += lit
		if i == len(src) { // final literal-only sequence ends the block
			if len(dst) != rawLen {
				return nil, fmt.Errorf("lz4: decoded %d bytes, declared %d", len(dst), rawLen)
			}
			return dst, nil
		}
		if i+2 > len(src) {
			return nil, errors.New("lz4: truncated match offset")
		}
		offset := int(src[i]) | int(src[i+1])<<8
		i += 2
		if offset == 0 || offset > len(dst) {
			return nil, fmt.Errorf("lz4: match offset %d outside %d decoded bytes", offset, len(dst))
		}
		ml := int(token & 0x0F)
		if ml == 15 {
			ext, ni, err := readLenExt(src, i)
			if err != nil {
				return nil, err
			}
			ml, i = ml+ext, ni
		}
		ml += minMatch
		if len(dst)+ml > rawLen {
			return nil, errors.New("lz4: match overruns declared raw size")
		}
		pos := len(dst) - offset
		for k := 0; k < ml; k++ { // byte-wise: overlapping matches encode runs
			dst = append(dst, dst[pos+k])
		}
	}
}
