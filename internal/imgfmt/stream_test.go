package imgfmt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"
)

// buildV2 encodes a representative record through the streaming encoder:
// scalar metadata, a nested section, and a bulk payload larger than the
// chunk size so multiple frames are exercised.
func buildV2(t *testing.T, big []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	e := NewStreamEncoderOpts(&buf, StreamOpts{Version: StreamVersion})
	e.String(1, "pod-0")
	e.Uint(2, 0x0a000001)
	e.Int(3, -12345)
	se := NewSectionEncoder()
	se.Uint(1, 9)
	se.Bool(2, true)
	e.RawSection(4, se.Body())
	e.Bytes(5, big)
	e.Float64(6, 2.75)
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return buf.Bytes()
}

func decodeV2(t *testing.T, data []byte, big []byte) {
	t.Helper()
	d, err := NewStreamDecoder(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("new decoder: %v", err)
	}
	if d.Version() != StreamVersion || d.IsDelta() {
		t.Fatalf("version=%d delta=%v", d.Version(), d.IsDelta())
	}
	if s, err := d.String(1); err != nil || s != "pod-0" {
		t.Fatalf("string: %q %v", s, err)
	}
	if v, err := d.Uint(2); err != nil || v != 0x0a000001 {
		t.Fatalf("uint: %d %v", v, err)
	}
	if v, err := d.Int(3); err != nil || v != -12345 {
		t.Fatalf("int: %d %v", v, err)
	}
	sec, err := d.Section(4)
	if err != nil {
		t.Fatalf("section: %v", err)
	}
	if v, err := sec.Uint(1); err != nil || v != 9 {
		t.Fatalf("section uint: %d %v", v, err)
	}
	if v, err := sec.Bool(2); err != nil || !v {
		t.Fatalf("section bool: %v %v", v, err)
	}
	got, err := d.Bytes(5)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("bytes: %d bytes, %v (want %d)", len(got), err, len(big))
	}
	if v, err := d.Float64(6); err != nil || v != 2.75 {
		t.Fatalf("float: %v %v", v, err)
	}
	if err := d.Finished(); err != nil {
		t.Fatalf("finished: %v", err)
	}
}

func TestStreamRoundTripV2(t *testing.T) {
	big := bytes.Repeat([]byte{0xa5, 0x5a, 7}, (3*DefaultChunk+100)/3)
	decodeV2(t, buildV2(t, big), big)
}

// TestStreamEncoderPeakBounded pins the tentpole invariant at the
// format layer: encoding a payload many times the chunk size buffers at
// most O(chunk), never the payload.
func TestStreamEncoderPeakBounded(t *testing.T) {
	big := make([]byte, 16*DefaultChunk)
	var buf bytes.Buffer
	e := NewStreamEncoder(&buf)
	e.String(1, "p")
	e.Bytes(5, big)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if e.Peak() > int64(2*DefaultChunk) {
		t.Fatalf("peak buffered %d > 2 chunks (%d) for a %d-byte payload", e.Peak(), 2*DefaultChunk, len(big))
	}
	if e.Written() != int64(buf.Len()) {
		t.Fatalf("written %d != emitted %d", e.Written(), buf.Len())
	}
}

// TestStreamDecoderV1 checks a legacy in-memory image reads through the
// streaming decoder transparently, with Raw exposing the validated
// record.
func TestStreamDecoderV1(t *testing.T) {
	e := NewEncoder()
	e.Uint(1, 7)
	e.String(2, "x")
	img := e.Finish()
	d, err := NewStreamDecoder(bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	if d.Version() != Version || d.IsDelta() {
		t.Fatalf("version=%d delta=%v", d.Version(), d.IsDelta())
	}
	if !bytes.Equal(d.Raw(), img) {
		t.Fatal("Raw() does not round-trip the v1 record")
	}
	if v, err := d.Uint(1); err != nil || v != 7 {
		t.Fatalf("uint: %d %v", v, err)
	}
	if s, err := d.String(2); err != nil || s != "x" {
		t.Fatalf("string: %q %v", s, err)
	}
	if err := d.Finished(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamDecoderTruncated drops bytes off the tail at every length
// and asserts decode always errors (never hangs, never succeeds).
func TestStreamDecoderTruncated(t *testing.T) {
	big := bytes.Repeat([]byte{3}, DefaultChunk+517)
	whole := buildV2(t, big)
	walk := func(data []byte) error {
		d, err := NewStreamDecoder(bytes.NewReader(data))
		if err != nil {
			return err
		}
		if _, err := d.String(1); err != nil {
			return err
		}
		if _, err := d.Uint(2); err != nil {
			return err
		}
		if _, err := d.Int(3); err != nil {
			return err
		}
		if _, err := d.Section(4); err != nil {
			return err
		}
		if _, err := d.Bytes(5); err != nil {
			return err
		}
		if _, err := d.Float64(6); err != nil {
			return err
		}
		return d.Finished()
	}
	if err := walk(whole); err != nil {
		t.Fatalf("intact stream: %v", err)
	}
	for cut := 0; cut < len(whole); cut++ {
		if err := walk(whole[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded successfully", cut, len(whole))
		}
	}
}

// TestStreamDecoderBadChunkCRC flips one byte in each frame region and
// asserts the walk fails with a checksum (or framing) error.
func TestStreamDecoderBadChunkCRC(t *testing.T) {
	big := bytes.Repeat([]byte{9}, 2*DefaultChunk)
	whole := buildV2(t, big)
	for _, pos := range []int{len(Magic) + 2, len(whole) / 2, len(whole) - 3} {
		bad := append([]byte(nil), whole...)
		bad[pos] ^= 0x40
		d, err := NewStreamDecoder(bytes.NewReader(bad))
		if err == nil {
			if _, err = d.String(1); err == nil {
				if _, err = d.Uint(2); err == nil {
					if _, err = d.Int(3); err == nil {
						if _, err = d.Section(4); err == nil {
							if _, err = d.Bytes(5); err == nil {
								if _, err = d.Float64(6); err == nil {
									err = d.Finished()
								}
							}
						}
					}
				}
			}
		}
		if err == nil {
			t.Fatalf("corruption at byte %d went undetected", pos)
		}
	}
}

// TestStreamDecoderHugeDeclaredLength hand-builds a frame claiming a
// payload far beyond MaxFrame; the decoder must reject it up front
// instead of allocating.
func TestStreamDecoderHugeDeclaredLength(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(Magic)
	hdr := appendUvarint(nil, StreamVersion)
	buf.Write(hdr)
	buf.Write(appendUvarint(nil, 1<<40)) // absurd frame length
	buf.Write(bytes.Repeat([]byte{0}, 64))
	d, err := NewStreamDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("header rejected: %v", err)
	}
	_, _, err = d.Peek()
	if !errors.Is(err, ErrFrame) && !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("want frame/checksum error, got %v", err)
	}
}

// TestStreamDecoderLyingFieldLength: a valid frame whose TLV payload
// declares a Bytes field longer than the stream. The window only grows
// by verified frames, so the decode must fail with ErrTruncated without
// a giant allocation.
func TestStreamDecoderLyingFieldLength(t *testing.T) {
	payload := appendUvarint(nil, 5) // tag
	payload = append(payload, TypeBytes)
	payload = appendUvarint(payload, 1<<30) // claims 1 GiB
	var buf bytes.Buffer
	hdr := appendUvarint([]byte(Magic), StreamVersion)
	buf.Write(hdr)
	buf.Write(appendUvarint(nil, uint64(len(payload))))
	buf.Write(payload)
	var tr [4]byte
	binary.LittleEndian.PutUint32(tr[:], crc32.ChecksumIEEE(payload))
	buf.Write(tr[:])
	d, err := NewStreamDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Bytes(5); !errors.Is(err, ErrTruncated) {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
}

func TestSniffVersion(t *testing.T) {
	e := NewEncoder()
	e.Uint(1, 1)
	v1 := e.Finish()
	if ver, delta, err := SniffVersion(v1); ver != Version || delta || err != nil {
		t.Fatalf("v1: %d %v %v", ver, delta, err)
	}
	de := NewDeltaEncoder()
	de.Uint(1, 1)
	if ver, delta, err := SniffVersion(de.Finish()); ver != Version || !delta || err != nil {
		t.Fatalf("v1 delta: %d %v %v", ver, delta, err)
	}
	var buf bytes.Buffer
	se := NewStreamDeltaEncoder(&buf)
	se.Uint(1, 1)
	if err := se.Close(); err != nil {
		t.Fatal(err)
	}
	if ver, delta, err := SniffVersion(buf.Bytes()); ver != StreamVersion3 || !delta || err != nil {
		t.Fatalf("v3 delta: %d %v %v", ver, delta, err)
	}
	var buf2 bytes.Buffer
	se2 := NewStreamDeltaEncoderOpts(&buf2, StreamOpts{Version: StreamVersion})
	se2.Uint(1, 1)
	if err := se2.Close(); err != nil {
		t.Fatal(err)
	}
	if ver, delta, err := SniffVersion(buf2.Bytes()); ver != StreamVersion || !delta || err != nil {
		t.Fatalf("v2 delta: %d %v %v", ver, delta, err)
	}
	if _, _, err := SniffVersion([]byte("NOTMAGIC")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: %v", err)
	}
	if _, _, err := SniffVersion([]byte(Magic)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short: %v", err)
	}
	bad := appendUvarint([]byte(Magic), 9)
	if _, _, err := SniffVersion(bad); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: %v", err)
	}
}

// TestEncoderWrapperByteIdentity pins that the in-memory Encoder (now a
// wrapper over StreamEncoder) still produces the exact legacy v1 bytes:
// header, field stream, CRC trailer.
func TestEncoderWrapperByteIdentity(t *testing.T) {
	e := NewEncoder()
	e.Uint(1, 42)
	e.String(2, "pod")
	e.Begin(3)
	e.Bytes(1, []byte{1, 2, 3})
	e.Bool(2, true)
	e.End()
	e.Float64(4, 3.14)
	img := e.Finish()

	// Reconstruct the expected bytes by hand from the format spec.
	want := append([]byte(Magic), Version)
	field := func(b []byte, tag uint64, typ byte) []byte {
		return append(appendUvarint(b, tag), typ)
	}
	want = appendUvarint(field(want, 1, TypeUint), 42)
	want = field(want, 2, TypeString)
	want = append(appendUvarint(want, 3), "pod"...)
	sec := appendUvarint(field(nil, 1, TypeBytes), 3)
	sec = append(sec, 1, 2, 3)
	sec = append(field(sec, 2, TypeBool), 1)
	want = field(want, 3, TypeSection)
	want = append(appendUvarint(want, uint64(len(sec))), sec...)
	want = field(want, 4, TypeFloat64)
	var f8 [8]byte
	binary.LittleEndian.PutUint64(f8[:], 0x40091EB851EB851F) // 3.14
	want = append(want, f8[:]...)
	var tr [4]byte
	binary.LittleEndian.PutUint32(tr[:], crc32.ChecksumIEEE(want))
	want = append(want, tr[:]...)

	if !bytes.Equal(img, want) {
		t.Fatalf("wrapper output differs from the legacy v1 encoding:\n got %x\nwant %x", img, want)
	}
}

// TestStreamEncoderWriteError checks the sticky-error path: a failing
// writer surfaces through Close, not a panic.
func TestStreamEncoderWriteError(t *testing.T) {
	e := NewStreamEncoder(failWriter{})
	e.Bytes(1, bytes.Repeat([]byte{1}, 2*DefaultChunk))
	if err := e.Close(); err == nil {
		t.Fatal("write error swallowed")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, io.ErrClosedPipe }
