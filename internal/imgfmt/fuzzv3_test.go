package imgfmt

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecodeV3 feeds hostile bytes to the version-3 frame decoder and
// the block decompressor. Decoding must never panic, and any corruption
// of a well-formed v3 stream must surface as one of the image-format
// error classes (the ckpt layer wraps exactly these into
// ErrCorruptImage) — frame-level failures name the frame.
func FuzzDecodeV3(f *testing.F) {
	// Seed corpus: empty, 1-byte, incompressible, and max-chunk frames,
	// plus hand-broken streams.
	add := func(payload []byte) {
		var buf bytes.Buffer
		e := NewStreamEncoder(&buf)
		e.Bytes(1, payload)
		if err := e.Close(); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	add(nil)                              // empty frame payload
	add([]byte{0x5a})                     // 1-byte frame
	add(incompressible(11, DefaultChunk)) // incompressible max-chunk frame
	add(sparse(DefaultChunk))             // compressible max-chunk frame
	add(sparse(3*DefaultChunk + 17))      // multi-frame
	// Truncated and CRC-flipped variants of a valid stream.
	var buf bytes.Buffer
	e := NewStreamEncoder(&buf)
	e.Bytes(1, sparse(DefaultChunk+99))
	if err := e.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes()[:len(buf.Bytes())/2])
	flip := append([]byte(nil), buf.Bytes()...)
	flip[len(flip)/2] ^= 0x10
	f.Add(flip)
	// An LZ4 frame whose stored length is not smaller than its raw
	// length, and an unknown style byte.
	hdr := appendUvarint([]byte(Magic), StreamVersion3)
	bad := appendUvarint(append([]byte(nil), hdr...), 16)
	bad = append(bad, FrameLZ4)
	bad = appendUvarint(bad, 16)
	f.Add(append(bad, make([]byte, 24)...))
	sty := appendUvarint(append([]byte(nil), hdr...), 4)
	f.Add(append(sty, 0x7f, 1, 2, 3, 4, 0, 0, 0, 0))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Arbitrary bytes through the streaming decoder: errors only.
		if sd, err := NewStreamDecoder(bytes.NewReader(data)); err == nil {
			exhaustStream(t, sd)
			_ = sd.Finished()
		}
		// Arbitrary bytes through the block decompressor: errors only.
		for _, rl := range []int{0, 1, len(data), 2*len(data) + 7, MaxFrame} {
			_, _ = blockDecompress(data, rl)
		}
		// Re-encode the input as a v3 payload, corrupt one byte, and
		// demand the walk either fails with a format-class error or
		// still yields the exact original payload.
		var enc bytes.Buffer
		we := NewStreamEncoder(&enc)
		we.Bytes(1, data)
		if err := we.Close(); err != nil {
			t.Fatal(err)
		}
		wire := enc.Bytes()
		pos, xor := 0, byte(1)
		if len(data) > 1 {
			pos = int(data[0]) % len(wire)
			xor = 1 + data[1]>>1
		}
		mut := append([]byte(nil), wire...)
		mut[pos] ^= xor
		d, err := NewStreamDecoder(bytes.NewReader(mut))
		var got []byte
		if err == nil {
			got, err = d.Bytes(1)
			if err == nil {
				err = d.Finished()
			}
		}
		if err == nil {
			if !bytes.Equal(got, data) {
				t.Fatalf("corrupt stream decoded cleanly to different payload (%d vs %d bytes)", len(got), len(data))
			}
			return
		}
		for _, class := range []error{ErrBadMagic, ErrBadVersion, ErrBadChecksum, ErrTruncated} {
			if errors.Is(err, class) {
				return
			}
		}
		t.Fatalf("corruption at byte %d surfaced outside the format error classes: %v", pos, err)
	})
}

// FuzzRoundTripV3 pins encode→decode identity for version-3 streams in
// both compression modes, plus determinism (same payload → same bytes)
// and direct block-codec round trips.
func FuzzRoundTripV3(f *testing.F) {
	f.Add([]byte{}, false)                        // empty
	f.Add([]byte{0x42}, false)                    // 1 byte
	f.Add(incompressible(5, DefaultChunk), false) // incompressible max-chunk
	f.Add(sparse(DefaultChunk), false)            // compressible max-chunk
	f.Add(sparse(2*DefaultChunk+313), true)       // multi-frame, RAW-forced
	f.Add(bytes.Repeat([]byte{1, 2, 3}, 5000), false)

	f.Fuzz(func(t *testing.T, payload []byte, nocompress bool) {
		o := StreamOpts{NoCompress: nocompress}
		encode := func() []byte {
			var buf bytes.Buffer
			e := NewStreamEncoderOpts(&buf, o)
			e.Uint(1, uint64(len(payload)))
			e.Bytes(2, payload)
			e.String(3, "pod")
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}
		wire := encode()
		if again := encode(); !bytes.Equal(wire, again) {
			t.Fatal("same payload encoded to different v3 bytes")
		}
		d, err := NewStreamDecoder(bytes.NewReader(wire))
		if err != nil {
			t.Fatalf("decode fresh stream: %v", err)
		}
		if d.Version() != StreamVersion3 {
			t.Fatalf("wrong version %d", d.Version())
		}
		if n, err := d.Uint(1); err != nil || n != uint64(len(payload)) {
			t.Fatalf("uint: %d %v", n, err)
		}
		got, err := d.Bytes(2)
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("payload mismatch: %d bytes, %v", len(got), err)
		}
		if s, err := d.String(3); err != nil || s != "pod" {
			t.Fatalf("string: %q %v", s, err)
		}
		if err := d.Finished(); err != nil {
			t.Fatalf("finished: %v", err)
		}
		// Block codec round trip, when the heuristic accepts the payload.
		if c := blockCompress(payload); c != nil {
			raw, err := blockDecompress(c, len(payload))
			if err != nil || !bytes.Equal(raw, payload) {
				t.Fatalf("block round trip: %v", err)
			}
		}
	})
}
