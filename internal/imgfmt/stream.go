// Chunked streaming forms of the image format.
//
// Version 1 images are a single TLV body with one CRC-32 trailer over
// the whole stream, which forces every producer and consumer to hold
// the complete image in memory. Version 2 keeps the exact same field
// encoding but splits the byte stream into framed chunks:
//
//	magic ("ZAPCIMG" | "ZAPCDLT")
//	uvarint version (2)
//	frame*   :=  uvarint payloadLen (>0) | payload | crc32(payload) LE
//	terminator = uvarint 0 | crc32(header + all payloads) LE
//
// Version 3 keeps the same chunking but makes every frame independently
// RAW or LZ4-style block-compressed, chosen per frame by a
// compressibility heuristic (compression is kept only when strictly
// smaller; see blockCompress):
//
//	magic ("ZAPCIMG" | "ZAPCDLT")
//	uvarint version (3)
//	frame*    :=  uvarint rawLen (>0) | style (1 byte) | body
//	body(RAW) :=  payload[rawLen] | crc32(payload) LE
//	body(LZ4) :=  uvarint storedLen (0 < storedLen < rawLen) |
//	              stored[storedLen] | crc32(stored) LE
//	terminator = uvarint 0 | crc32(header + all raw payloads) LE
//
// Each frame carries its own CRC over the bytes as stored (so
// corruption is caught before any decompression is attempted), while
// the terminator CRC covers the logical payload stream, so it is
// identical whether frames were compressed or not. A consumer (the
// supervisor's generation validator, a migration receiver) can verify
// data incrementally and fail fast on truncation without ever
// materializing the image. The frame layer is pure transport:
// concatenating every (decompressed) payload yields exactly the
// version-1 field stream, so the TLV walker above it is shared between
// all versions. Because the per-frame RAW/compressed decision is a pure
// function of the frame's payload bytes, version-3 output is
// bit-identical regardless of worker count or of streaming vs. buffered
// IO.
package imgfmt

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// StreamVersion is the uncompressed chunked framing version. Streams of
// this version are decoded forever; encoders only write it on request
// (StreamOpts.Version), for compatibility tooling and baselines.
const StreamVersion = 2

// StreamVersion3 is the compressed chunked framing version written by
// streaming encoders by default: every frame is independently RAW or
// LZ4-style block-compressed.
const StreamVersion3 = 3

// DefaultChunk is the frame payload size streaming encoders flush at.
// Peak encoder buffering is O(DefaultChunk + open section bodies).
const DefaultChunk = 64 << 10

// MaxFrame bounds a single frame's declared payload length. A frame
// claiming more than this is corrupt by definition, which stops a
// hostile length prefix from driving a huge allocation.
const MaxFrame = 1 << 20

// ErrFrame reports a malformed chunk frame in a version-2 stream.
var ErrFrame = fmt.Errorf("%w: malformed chunk frame", ErrBadChecksum)

// StreamEncoder writes an image as a sequence of CRC-framed chunks to
// an io.Writer. It shares the field encoding (and the section stack)
// with the in-memory Encoder, which is a thin buffered wrapper around
// this type. StreamEncoders are not safe for concurrent use.
//
// Fields written at the top level are flushed to the writer as soon as
// a full chunk accumulates; section bodies buffer until their End so
// their length prefix can be written. Keep sections small (metadata)
// and hoist bulk payloads to top-level Bytes fields to preserve the
// O(chunk) buffering bound.
type StreamEncoder struct {
	w        io.Writer
	version  int      // 0 bare section, 1 buffered legacy, 2/3 framed streaming
	compress bool     // version 3 with the per-frame compression heuristic on
	stack    [][]byte // stack[0] is the root buffer; deeper entries are open sections
	chunk    int
	crc      uint32 // running CRC over header + logical payload (versions 2/3)
	written  int64
	logical  int64 // uncompressed payload bytes framed so far
	peak     int64
	err      error
	closed   bool
}

// StreamOpts tunes a streaming encoder. The zero value is the default:
// version-3 frames with the per-frame compression heuristic enabled.
type StreamOpts struct {
	// Version selects the frame layout written: 0 means the default
	// (StreamVersion3); StreamVersion (2) writes the uncompressed
	// legacy framing for baselines and compatibility tooling.
	Version int
	// NoCompress stores every version-3 frame RAW, skipping the
	// compression attempt. Decoders do not care: RAW frames are always
	// legal, and the whole-stream CRC is over logical payloads.
	NoCompress bool
}

// NewStreamEncoder returns a streaming encoder that has already written
// the default (version-3) full-image header to w.
func NewStreamEncoder(w io.Writer) *StreamEncoder { return newStream(w, Magic, StreamOpts{}) }

// NewStreamDeltaEncoder returns a streaming encoder that has already
// written the default (version-3) delta-record header to w.
func NewStreamDeltaEncoder(w io.Writer) *StreamEncoder { return newStream(w, DeltaMagic, StreamOpts{}) }

// NewStreamEncoderOpts is NewStreamEncoder with explicit options.
func NewStreamEncoderOpts(w io.Writer, o StreamOpts) *StreamEncoder {
	return newStream(w, Magic, o)
}

// NewStreamDeltaEncoderOpts is NewStreamDeltaEncoder with explicit
// options.
func NewStreamDeltaEncoderOpts(w io.Writer, o StreamOpts) *StreamEncoder {
	return newStream(w, DeltaMagic, o)
}

func newStream(w io.Writer, magic string, o StreamOpts) *StreamEncoder {
	ver := o.Version
	if ver == 0 {
		ver = StreamVersion3
	}
	if ver != StreamVersion && ver != StreamVersion3 {
		panic(fmt.Sprintf("imgfmt: unsupported stream version %d", ver))
	}
	s := &StreamEncoder{
		w:        w,
		version:  ver,
		compress: ver == StreamVersion3 && !o.NoCompress,
		chunk:    DefaultChunk,
		stack:    [][]byte{make([]byte, 0, 512)},
	}
	hdr := appendUvarint(append([]byte(nil), magic...), uint64(ver))
	s.crc = crc32.Update(0, crc32.IEEETable, hdr)
	s.writeRaw(hdr)
	return s
}

// streaming reports whether this encoder writes a framed (chunked)
// stream, as opposed to the buffered version-1 or bare-section forms.
func (s *StreamEncoder) streaming() bool { return s.version >= StreamVersion }

// newBuffered returns the version-1 in-memory form: the legacy header
// followed by an unframed field stream, finished with Finish.
func newBuffered(magic string) *StreamEncoder {
	root := make([]byte, 0, 256)
	root = append(root, magic...)
	root = appendUvarint(root, Version)
	return &StreamEncoder{version: Version, stack: [][]byte{root}}
}

// newSection returns the bare-body form used by NewSectionEncoder.
func newSection() *StreamEncoder {
	return &StreamEncoder{stack: [][]byte{make([]byte, 0, 64)}}
}

// Err returns the first write error encountered, if any. Once set, all
// further operations are no-ops returning the same error from Close.
func (s *StreamEncoder) Err() error { return s.err }

// Written reports the bytes emitted to the writer so far.
func (s *StreamEncoder) Written() int64 { return s.written }

// Logical reports the uncompressed payload bytes framed so far — the
// size of the version-1 field stream the frames carry, independent of
// per-frame compression.
func (s *StreamEncoder) Logical() int64 { return s.logical }

// Peak reports the maximum bytes this encoder ever buffered at once
// (staging chunk plus any open section bodies). For buffered versions
// this approaches the full image size; for version 2 it stays bounded
// by the chunk size plus the largest section body.
func (s *StreamEncoder) Peak() int64 { return s.peak }

func (s *StreamEncoder) top() *[]byte { return &s.stack[len(s.stack)-1] }

func (s *StreamEncoder) writeRaw(b []byte) {
	if s.err != nil {
		return
	}
	n, err := s.w.Write(b)
	s.written += int64(n)
	if err != nil {
		s.err = err
	}
}

// emitFrame writes one framed chunk and folds its logical payload into
// the whole-stream CRC. On a version-3 encoder the frame is stored
// compressed when blockCompress judges the payload worth it; the
// per-frame CRC always covers the bytes as stored.
func (s *StreamEncoder) emitFrame(payload []byte) {
	if len(payload) == 0 || s.err != nil {
		return
	}
	s.logical += int64(len(payload))
	if s.version == StreamVersion {
		var hdr [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(hdr[:], uint64(len(payload)))
		s.writeRaw(hdr[:n])
		s.writeRaw(payload)
		var tr [4]byte
		binary.LittleEndian.PutUint32(tr[:], crc32.ChecksumIEEE(payload))
		s.writeRaw(tr[:])
		s.crc = crc32.Update(s.crc, crc32.IEEETable, payload)
		return
	}
	stored, style := payload, byte(FrameRaw)
	if s.compress {
		if c := blockCompress(payload); c != nil {
			stored, style = c, FrameLZ4
		}
	}
	var hdr [2*binary.MaxVarintLen64 + 1]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	hdr[n] = style
	n++
	if style == FrameLZ4 {
		n += binary.PutUvarint(hdr[n:], uint64(len(stored)))
	}
	s.writeRaw(hdr[:n])
	s.writeRaw(stored)
	var tr [4]byte
	binary.LittleEndian.PutUint32(tr[:], crc32.ChecksumIEEE(stored))
	s.writeRaw(tr[:])
	s.crc = crc32.Update(s.crc, crc32.IEEETable, payload)
}

// settle updates buffering accounting and, on a streaming encoder with
// no open sections, flushes full chunks out of the staging buffer.
func (s *StreamEncoder) settle() {
	if s.streaming() && len(s.stack) == 1 && s.err == nil {
		b := s.stack[0]
		for len(b) >= s.chunk {
			s.emitFrame(b[:s.chunk])
			b = b[s.chunk:]
		}
		if len(b) != len(s.stack[0]) {
			s.stack[0] = append(s.stack[0][:0], b...)
		}
	}
	var n int64
	for _, b := range s.stack {
		n += int64(len(b))
	}
	if n > s.peak {
		s.peak = n
	}
}

func (s *StreamEncoder) field(tag uint64, typ byte) {
	b := s.top()
	*b = appendUvarint(*b, tag)
	*b = append(*b, typ)
}

// Uint writes an unsigned integer field.
func (s *StreamEncoder) Uint(tag uint64, v uint64) {
	s.field(tag, TypeUint)
	b := s.top()
	*b = appendUvarint(*b, v)
	s.settle()
}

// Int writes a signed integer field.
func (s *StreamEncoder) Int(tag uint64, v int64) {
	s.field(tag, TypeInt)
	b := s.top()
	*b = appendSvarint(*b, v)
	s.settle()
}

// Bytes writes an opaque byte-slice field. On a streaming encoder a
// top-level value of at least one chunk is framed directly out of v
// without being copied into the staging buffer, so bulk payloads never
// count against peak buffering.
func (s *StreamEncoder) Bytes(tag uint64, v []byte) {
	s.field(tag, TypeBytes)
	b := s.top()
	*b = appendUvarint(*b, uint64(len(v)))
	if s.streaming() && len(s.stack) == 1 && len(v) >= s.chunk {
		s.settle() // account for the staged header before flushing it
		s.emitFrame(s.stack[0])
		s.stack[0] = s.stack[0][:0]
		for off := 0; off < len(v); off += s.chunk {
			end := off + s.chunk
			if end > len(v) {
				end = len(v)
			}
			s.emitFrame(v[off:end])
		}
		return
	}
	*b = append(*b, v...)
	s.settle()
}

// String writes a string field.
func (s *StreamEncoder) String(tag uint64, v string) {
	s.field(tag, TypeString)
	b := s.top()
	*b = appendUvarint(*b, uint64(len(v)))
	*b = append(*b, v...)
	s.settle()
}

// Bool writes a boolean field.
func (s *StreamEncoder) Bool(tag uint64, v bool) {
	s.field(tag, TypeBool)
	b := s.top()
	if v {
		*b = append(*b, 1)
	} else {
		*b = append(*b, 0)
	}
	s.settle()
}

// Float64 writes an IEEE-754 double field.
func (s *StreamEncoder) Float64(tag uint64, v float64) {
	s.field(tag, TypeFloat64)
	b := s.top()
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
	*b = append(*b, tmp[:]...)
	s.settle()
}

// Begin opens a nested section with the given tag. Section bodies
// buffer in memory until End, even on a streaming encoder, because
// their length prefix precedes them on the wire.
func (s *StreamEncoder) Begin(tag uint64) {
	s.field(tag, TypeSection)
	s.stack = append(s.stack, make([]byte, 0, 64))
}

// End closes the innermost open section.
func (s *StreamEncoder) End() {
	if len(s.stack) < 2 {
		panic("imgfmt: End without matching Begin")
	}
	sec := s.stack[len(s.stack)-1]
	s.stack = s.stack[:len(s.stack)-1]
	b := s.top()
	*b = appendUvarint(*b, uint64(len(sec)))
	*b = append(*b, sec...)
	s.settle()
}

// RawSection writes a section field whose body was encoded separately
// (by a NewSectionEncoder finished with Body).
func (s *StreamEncoder) RawSection(tag uint64, body []byte) {
	s.field(tag, TypeSection)
	b := s.top()
	*b = appendUvarint(*b, uint64(len(body)))
	*b = append(*b, body...)
	s.settle()
}

// Body returns the bare field stream of a section encoder.
func (s *StreamEncoder) Body() []byte {
	if len(s.stack) != 1 {
		panic("imgfmt: Body with open sections")
	}
	return s.stack[0]
}

// Finish returns the finished buffered (version-1) image, appending the
// CRC-32 trailer.
func (s *StreamEncoder) Finish() []byte {
	if len(s.stack) != 1 {
		panic("imgfmt: Finish with open sections")
	}
	if s.streaming() {
		panic("imgfmt: Finish on a streaming encoder; use Close")
	}
	b := s.stack[0]
	sum := crc32.ChecksumIEEE(b)
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], sum)
	return append(b, tmp[:]...)
}

// Len reports the bytes currently buffered across the section stack.
func (s *StreamEncoder) Len() int {
	n := 0
	for _, b := range s.stack {
		n += len(b)
	}
	return n
}

// Close flushes the final partial chunk and writes the stream
// terminator carrying the whole-stream CRC. It must be called exactly
// once, with no sections open, and returns the first write error.
func (s *StreamEncoder) Close() error {
	if s.closed {
		return s.err
	}
	if len(s.stack) != 1 {
		panic("imgfmt: Close with open sections")
	}
	if !s.streaming() {
		panic("imgfmt: Close on a buffered encoder; use Finish")
	}
	s.closed = true
	s.emitFrame(s.stack[0])
	s.stack[0] = s.stack[0][:0]
	var tr [5]byte // uvarint(0) is the single byte 0
	binary.LittleEndian.PutUint32(tr[1:], s.crc)
	s.writeRaw(tr[:])
	return s.err
}

// SniffVersion reads just the header of an encoded record, reporting
// its format version and whether it is a delta, without validating the
// rest.
func SniffVersion(data []byte) (version int, delta bool, err error) {
	if len(data) < len(Magic)+1 {
		return 0, false, ErrTruncated
	}
	switch string(data[:len(Magic)]) {
	case Magic:
	case DeltaMagic:
		delta = true
	default:
		return 0, false, ErrBadMagic
	}
	v, n := binary.Uvarint(data[len(Magic):])
	if n <= 0 {
		return 0, false, ErrTruncated
	}
	switch v {
	case Version, StreamVersion, StreamVersion3:
		return int(v), delta, nil
	default:
		return 0, false, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
}

// StreamDecoder reads an encoded record from an io.Reader, verifying
// chunk CRCs as frames arrive. It handles every format version: a
// version-1 stream is read fully and validated like DecodeAny (its raw
// bytes stay available through Raw for callers that re-parse them); a
// version-2 or version-3 stream is pulled frame by frame, holding only
// the bytes of the field currently being decoded. Version-3 frames are
// decompressed after their stored-byte CRC has been verified, so
// corrupt input never reaches the decompressor unnoticed.
//
// All reads are bounded: a truncated or corrupt stream always yields an
// error (never a hang), and declared lengths are only trusted up to the
// bytes that actually arrived under a valid frame CRC.
type StreamDecoder struct {
	mem     *Decoder // non-nil when the input was a buffered version-1 record
	raw     []byte   // the full version-1 record, trailer included
	delta   bool
	version int

	r     io.Reader
	win   []byte // verified-but-unconsumed payload window
	off   int
	crc   uint32 // running CRC over header + consumed payloads
	fin   bool   // terminator seen and whole-stream CRC verified
	frame int    // 1-based index of the frame being pulled, for errors
	err   error

	peeked bool
	ptag   uint64
	ptyp   byte
}

// NewStreamDecoder reads and validates the record header from r and
// returns a decoder positioned at the first field.
func NewStreamDecoder(r io.Reader) (*StreamDecoder, error) {
	hdr := make([]byte, len(Magic), len(Magic)+binary.MaxVarintLen64)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, ErrTruncated
	}
	d := &StreamDecoder{r: r}
	switch string(hdr) {
	case Magic:
	case DeltaMagic:
		d.delta = true
	default:
		return nil, ErrBadMagic
	}
	ver, vbytes, err := readUvarintFrom(r)
	if err != nil {
		return nil, ErrTruncated
	}
	hdr = append(hdr, vbytes...)
	switch ver {
	case Version:
		rest, err := io.ReadAll(r)
		if err != nil {
			return nil, err
		}
		raw := append(hdr, rest...)
		dec, delta, err := DecodeAny(raw)
		if err != nil {
			return nil, err
		}
		if delta != d.delta {
			return nil, ErrBadMagic
		}
		d.mem, d.raw, d.version = dec, raw, Version
	case StreamVersion, StreamVersion3:
		d.version = int(ver)
		d.crc = crc32.Update(0, crc32.IEEETable, hdr)
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, ver)
	}
	return d, nil
}

// readUvarintFrom decodes a uvarint byte-at-a-time, returning the raw
// bytes consumed alongside the value.
func readUvarintFrom(r io.Reader) (uint64, []byte, error) {
	var raw []byte
	var v uint64
	var shift uint
	var one [1]byte
	for i := 0; i < binary.MaxVarintLen64; i++ {
		if _, err := io.ReadFull(r, one[:]); err != nil {
			return 0, nil, ErrTruncated
		}
		raw = append(raw, one[0])
		if one[0] < 0x80 {
			return v | uint64(one[0])<<shift, raw, nil
		}
		v |= uint64(one[0]&0x7f) << shift
		shift += 7
	}
	return 0, nil, ErrTruncated
}

// Version reports the format version of the stream (1, 2, or 3).
func (d *StreamDecoder) Version() int { return d.version }

// IsDelta reports whether the stream is a delta record.
func (d *StreamDecoder) IsDelta() bool { return d.delta }

// Raw returns the complete validated record bytes for a version-1
// stream (nil for version 2, which is never materialized).
func (d *StreamDecoder) Raw() []byte { return d.raw }

func (d *StreamDecoder) avail() int { return len(d.win) - d.off }

// pull reads, verifies, and appends the next frame to the window.
// It returns false at the terminator or on error.
func (d *StreamDecoder) pull() bool {
	if d.err != nil || d.fin {
		return false
	}
	n, _, err := readUvarintFrom(d.r)
	if err != nil {
		d.err = ErrTruncated
		return false
	}
	if n == 0 {
		var sum [4]byte
		if _, err := io.ReadFull(d.r, sum[:]); err != nil {
			d.err = ErrTruncated
			return false
		}
		if binary.LittleEndian.Uint32(sum[:]) != d.crc {
			d.err = fmt.Errorf("%w: stream trailer", ErrBadChecksum)
			return false
		}
		d.fin = true
		return false
	}
	if n > MaxFrame {
		if d.version == StreamVersion3 {
			d.err = fmt.Errorf("%w: frame %d declares %d raw bytes", ErrFrame, d.frame+1, n)
		} else {
			d.err = fmt.Errorf("%w: declared payload of %d bytes", ErrFrame, n)
		}
		return false
	}
	d.frame++
	var payload []byte
	if d.version == StreamVersion3 {
		if payload = d.pullV3(int(n)); payload == nil {
			return false
		}
	} else {
		payload = make([]byte, n)
		if _, err := io.ReadFull(d.r, payload); err != nil {
			d.err = ErrTruncated
			return false
		}
		var tr [4]byte
		if _, err := io.ReadFull(d.r, tr[:]); err != nil {
			d.err = ErrTruncated
			return false
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(tr[:]) {
			d.err = fmt.Errorf("%w: chunk CRC", ErrBadChecksum)
			return false
		}
	}
	d.crc = crc32.Update(d.crc, crc32.IEEETable, payload)
	if d.off > 0 {
		d.win = append(d.win[:0], d.win[d.off:]...)
		d.off = 0
	}
	d.win = append(d.win, payload...)
	return true
}

// pullV3 reads the body of one version-3 frame whose raw length has
// already been consumed, returning the logical payload or nil with
// d.err set. Errors name the failing frame (1-based). The stored-byte
// CRC is verified before any decompression runs.
func (d *StreamDecoder) pullV3(rawLen int) []byte {
	var one [1]byte
	if _, err := io.ReadFull(d.r, one[:]); err != nil {
		d.err = ErrTruncated
		return nil
	}
	style := one[0]
	storedLen := rawLen
	switch style {
	case FrameRaw:
	case FrameLZ4:
		m, _, err := readUvarintFrom(d.r)
		if err != nil {
			d.err = ErrTruncated
			return nil
		}
		if m == 0 || m >= uint64(rawLen) {
			d.err = fmt.Errorf("%w: frame %d stores %d bytes for %d raw", ErrFrame, d.frame, m, rawLen)
			return nil
		}
		storedLen = int(m)
	default:
		d.err = fmt.Errorf("%w: frame %d has unknown style %d", ErrFrame, d.frame, style)
		return nil
	}
	stored := make([]byte, storedLen)
	if _, err := io.ReadFull(d.r, stored); err != nil {
		d.err = ErrTruncated
		return nil
	}
	var tr [4]byte
	if _, err := io.ReadFull(d.r, tr[:]); err != nil {
		d.err = ErrTruncated
		return nil
	}
	if crc32.ChecksumIEEE(stored) != binary.LittleEndian.Uint32(tr[:]) {
		d.err = fmt.Errorf("%w: frame %d stored CRC", ErrFrame, d.frame)
		return nil
	}
	if style == FrameRaw {
		return stored
	}
	payload, err := blockDecompress(stored, rawLen)
	if err != nil {
		d.err = fmt.Errorf("%w: frame %d: %v", ErrFrame, d.frame, err)
		return nil
	}
	return payload
}

// need blocks until at least n verified payload bytes are available in
// the window. Truncation surfaces as an error, never a hang, because
// every read is bounded by the declared frame sizes.
func (d *StreamDecoder) need(n int) error {
	for d.avail() < n {
		if !d.pull() {
			if d.err != nil {
				return d.err
			}
			return ErrTruncated
		}
	}
	return nil
}

func (d *StreamDecoder) uvarint() (uint64, error) {
	for {
		v, n := binary.Uvarint(d.win[d.off:])
		if n > 0 {
			d.off += n
			return v, nil
		}
		if n < 0 {
			return 0, ErrTruncated
		}
		if !d.pull() {
			if d.err != nil {
				return 0, d.err
			}
			return 0, ErrTruncated
		}
	}
}

func (d *StreamDecoder) svarint() (int64, error) {
	for {
		v, n := binary.Varint(d.win[d.off:])
		if n > 0 {
			d.off += n
			return v, nil
		}
		if n < 0 {
			return 0, ErrTruncated
		}
		if !d.pull() {
			if d.err != nil {
				return 0, d.err
			}
			return 0, ErrTruncated
		}
	}
}

// tagOrEnd reads the next field tag, distinguishing a clean end of
// stream (ErrEndOfSection) from truncation.
func (d *StreamDecoder) tagOrEnd() (uint64, error) {
	if d.avail() == 0 && !d.pull() {
		if d.err != nil {
			return 0, d.err
		}
		if d.fin {
			return 0, ErrEndOfSection
		}
		return 0, ErrTruncated
	}
	return d.uvarint()
}

// Peek returns the tag and type of the next field without consuming it
// (ErrEndOfSection at a clean end of stream).
func (d *StreamDecoder) Peek() (tag uint64, typ byte, err error) {
	if d.mem != nil {
		return d.mem.Peek()
	}
	if d.peeked {
		return d.ptag, d.ptyp, nil
	}
	tag, err = d.tagOrEnd()
	if err != nil {
		return 0, 0, err
	}
	if err := d.need(1); err != nil {
		return 0, 0, err
	}
	typ = d.win[d.off]
	d.off++
	d.peeked, d.ptag, d.ptyp = true, tag, typ
	return tag, typ, nil
}

func (d *StreamDecoder) header(wantTag uint64, wantType byte) error {
	var tag uint64
	var typ byte
	if d.peeked {
		tag, typ = d.ptag, d.ptyp
		d.peeked = false
	} else {
		var err error
		tag, err = d.tagOrEnd()
		if err != nil {
			return err
		}
		if err := d.need(1); err != nil {
			return err
		}
		typ = d.win[d.off]
		d.off++
	}
	if tag != wantTag {
		return fmt.Errorf("%w: got %d want %d", ErrTagMismatch, tag, wantTag)
	}
	if typ != wantType {
		return fmt.Errorf("%w: tag %d got type %d want %d", ErrTypeMismatch, tag, typ, wantType)
	}
	return nil
}

// lengthPrefixed consumes a length-prefixed value, returning a copy the
// caller owns. The window only ever grows by CRC-verified frames, so a
// lying length prefix fails with ErrTruncated before any allocation
// larger than the data that actually arrived.
func (d *StreamDecoder) lengthPrefixed() ([]byte, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > math.MaxInt32 {
		return nil, ErrTruncated
	}
	if err := d.need(int(n)); err != nil {
		return nil, err
	}
	v := append([]byte(nil), d.win[d.off:d.off+int(n)]...)
	d.off += int(n)
	return v, nil
}

// Uint reads an unsigned integer field with the given tag.
func (d *StreamDecoder) Uint(tag uint64) (uint64, error) {
	if d.mem != nil {
		return d.mem.Uint(tag)
	}
	if err := d.header(tag, TypeUint); err != nil {
		return 0, err
	}
	return d.uvarint()
}

// Int reads a signed integer field with the given tag.
func (d *StreamDecoder) Int(tag uint64) (int64, error) {
	if d.mem != nil {
		return d.mem.Int(tag)
	}
	if err := d.header(tag, TypeInt); err != nil {
		return 0, err
	}
	return d.svarint()
}

// Bytes reads an opaque byte-slice field with the given tag. Unlike
// Decoder.Bytes, the returned slice is caller-owned.
func (d *StreamDecoder) Bytes(tag uint64) ([]byte, error) {
	if d.mem != nil {
		return d.mem.Bytes(tag)
	}
	if err := d.header(tag, TypeBytes); err != nil {
		return nil, err
	}
	return d.lengthPrefixed()
}

// String reads a string field with the given tag.
func (d *StreamDecoder) String(tag uint64) (string, error) {
	if d.mem != nil {
		return d.mem.String(tag)
	}
	if err := d.header(tag, TypeString); err != nil {
		return "", err
	}
	b, err := d.lengthPrefixed()
	return string(b), err
}

// Bool reads a boolean field with the given tag.
func (d *StreamDecoder) Bool(tag uint64) (bool, error) {
	if d.mem != nil {
		return d.mem.Bool(tag)
	}
	if err := d.header(tag, TypeBool); err != nil {
		return false, err
	}
	if err := d.need(1); err != nil {
		return false, err
	}
	v := d.win[d.off]
	d.off++
	return v != 0, nil
}

// Float64 reads an IEEE-754 double field with the given tag.
func (d *StreamDecoder) Float64(tag uint64) (float64, error) {
	if d.mem != nil {
		return d.mem.Float64(tag)
	}
	if err := d.header(tag, TypeFloat64); err != nil {
		return 0, err
	}
	if err := d.need(8); err != nil {
		return 0, err
	}
	bits := binary.LittleEndian.Uint64(d.win[d.off:])
	d.off += 8
	return math.Float64frombits(bits), nil
}

// Section reads a nested section field with the given tag, returning an
// in-memory decoder over its (copied) body. Sections are expected to be
// small metadata groups; bulk data lives in top-level Bytes fields.
func (d *StreamDecoder) Section(tag uint64) (*Decoder, error) {
	if d.mem != nil {
		return d.mem.Section(tag)
	}
	if err := d.header(tag, TypeSection); err != nil {
		return nil, err
	}
	body, err := d.lengthPrefixed()
	if err != nil {
		return nil, err
	}
	return &Decoder{data: body}, nil
}

// Skip consumes the next field regardless of tag or type.
func (d *StreamDecoder) Skip() error {
	if d.mem != nil {
		return d.mem.Skip()
	}
	var typ byte
	if d.peeked {
		typ = d.ptyp
		d.peeked = false
	} else {
		if _, err := d.tagOrEnd(); err != nil {
			return err
		}
		if err := d.need(1); err != nil {
			return err
		}
		typ = d.win[d.off]
		d.off++
	}
	switch typ {
	case TypeUint:
		_, err := d.uvarint()
		return err
	case TypeInt:
		_, err := d.svarint()
		return err
	case TypeBytes, TypeString, TypeSection:
		_, err := d.lengthPrefixed()
		return err
	case TypeBool:
		if err := d.need(1); err != nil {
			return err
		}
		d.off++
		return nil
	case TypeFloat64:
		if err := d.need(8); err != nil {
			return err
		}
		d.off += 8
		return nil
	default:
		return fmt.Errorf("imgfmt: unknown wire type %d", typ)
	}
}

// Finished verifies that the stream ends cleanly after the last
// consumed field: no unread fields, terminator present, whole-stream
// CRC valid. For version-1 streams it checks the in-memory decoder is
// exhausted (the trailer was validated up front).
func (d *StreamDecoder) Finished() error {
	if d.mem != nil {
		if d.mem.More() {
			return fmt.Errorf("%w: trailing fields", ErrTagMismatch)
		}
		return nil
	}
	if _, err := d.tagOrEnd(); err != ErrEndOfSection {
		if err == nil {
			return fmt.Errorf("%w: trailing fields", ErrTagMismatch)
		}
		return err
	}
	return nil
}

// DecodeStream is a convenience wrapper decoding an in-memory record of
// either version into a StreamDecoder.
func DecodeStream(data []byte) (*StreamDecoder, error) {
	return NewStreamDecoder(bytes.NewReader(data))
}
