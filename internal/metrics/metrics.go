// Package metrics provides the small statistics and table-formatting
// helpers used by the experiment harness to report results in the shape
// the paper does (means over repeated checkpoints, standard deviations,
// per-node series).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample accumulates float64 observations.
type Sample struct {
	xs []float64
}

// Add appends an observation.
func (s *Sample) Add(v float64) { s.xs = append(s.xs, v) }

// N reports the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.xs {
		sum += v
	}
	return sum / float64(len(s.xs))
}

// Std returns the sample standard deviation (n-1 denominator), or 0 when
// fewer than two observations exist.
func (s *Sample) Std() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	ss := 0.0
	for _, v := range s.xs {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, v := range s.xs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, v := range s.xs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Percentile returns the p-th percentile (0..100) using nearest-rank on a
// sorted copy, or 0 for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	c := append([]float64(nil), s.xs...)
	sort.Float64s(c)
	if p <= 0 {
		return c[0]
	}
	if p >= 100 {
		return c[len(c)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(c)))) - 1
	if rank < 0 {
		rank = 0
	}
	return c[rank]
}

// Table renders aligned plain-text tables for experiment output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row; cells are formatted with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.rows = append(t.rows, row)
}

// String renders the table with column alignment.
func (t *Table) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// HumanBytes formats a byte count as the paper does (KB/MB with short
// precision).
func HumanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
