package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Add(v)
	}
	if s.N() != 5 {
		t.Fatalf("N = %d", s.N())
	}
	if got := s.Mean(); got != 3 {
		t.Fatalf("Mean = %v", got)
	}
	if got := s.Std(); math.Abs(got-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("Std = %v", got)
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Std() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty sample should report zeros")
	}
}

func TestSingleObservationStd(t *testing.T) {
	var s Sample
	s.Add(7)
	if s.Std() != 0 {
		t.Fatalf("Std of one obs = %v", s.Std())
	}
}

func TestPercentile(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(50); got != 50 {
		t.Fatalf("P50 = %v", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("P0 = %v", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Fatalf("P100 = %v", got)
	}
	if got := s.Percentile(99); got != 99 {
		t.Fatalf("P99 = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	var s Sample
	s.Add(3)
	s.Add(1)
	s.Add(2)
	s.Percentile(50)
	if s.xs[0] != 3 || s.xs[1] != 1 || s.xs[2] != 2 {
		t.Fatal("Percentile mutated sample order")
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("app", "nodes", "time")
	tab.Row("cpi", 16, "102ms")
	tab.Row("bt/nas", 4, "287ms")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "app") || !strings.Contains(lines[3], "bt/nas") {
		t.Fatalf("bad table:\n%s", out)
	}
	// Columns align: every line has the same prefix width before "nodes" col.
	idx0 := strings.Index(lines[0], "nodes")
	idx2 := strings.Index(lines[2], "16")
	if idx0 != idx2 {
		t.Fatalf("misaligned table:\n%s", out)
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[int64]string{
		512:           "512 B",
		2048:          "2.0 KB",
		16 << 20:      "16.0 MB",
		(3 << 30) / 2: "1.5 GB",
	}
	for n, want := range cases {
		if got := HumanBytes(n); got != want {
			t.Errorf("HumanBytes(%d) = %q, want %q", n, got, want)
		}
	}
}

// Property: Min <= Mean <= Max, and Min <= Percentile(p) <= Max.
func TestQuickSampleInvariants(t *testing.T) {
	f := func(vals []int32, p uint8) bool {
		var s Sample
		for _, v := range vals {
			s.Add(float64(v))
		}
		if s.N() == 0 {
			return true
		}
		m := s.Mean()
		const eps = 1e-6
		if m < s.Min()-eps || m > s.Max()+eps {
			return false
		}
		pc := s.Percentile(float64(p % 101))
		return pc >= s.Min() && pc <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// CompareSuspend gates growth of the pre-copy suspension window:
// within-tolerance drift and missing baselines pass, real regressions
// fail with a message naming the window.
func TestCompareSuspend(t *testing.T) {
	base := CkptBenchRecord{SuspendUs: 1000}
	if err := CompareSuspend(base, CkptBenchRecord{SuspendUs: 1200}, 25); err != nil {
		t.Fatalf("20%% growth within a 25%% tolerance must pass: %v", err)
	}
	if err := CompareSuspend(base, CkptBenchRecord{SuspendUs: 500}, 25); err != nil {
		t.Fatalf("an improvement must pass: %v", err)
	}
	if err := CompareSuspend(CkptBenchRecord{}, CkptBenchRecord{SuspendUs: 9e9}, 25); err != nil {
		t.Fatalf("records predating the field must compare clean: %v", err)
	}
	err := CompareSuspend(base, CkptBenchRecord{SuspendUs: 1300}, 25)
	if err == nil {
		t.Fatal("30% growth over a 25% tolerance must fail")
	}
	if !strings.Contains(err.Error(), "suspend window") {
		t.Fatalf("refusal should name the suspend window: %v", err)
	}
}
