package metrics

import (
	"encoding/json"
	"fmt"
)

// BenchSchema is the current CkptBenchRecord schema version. It is
// bumped whenever a field changes meaning (not when one is added with a
// zero-value default); zapc-benchdiff refuses to compare records of
// different versions rather than produce a silently wrong verdict.
// Records written before versioning decode as Schema 0.
const BenchSchema = 1

// CkptBenchRecord is one run of the checkpoint-pipeline benchmark
// (cmd/zapc-bench -fig ckpt). Records accumulate in BENCH_ckpt.json so
// successive runs form a trajectory that zapc-benchdiff can compare.
type CkptBenchRecord struct {
	// Schema is the record's schema version (see BenchSchema). Zero in
	// records written before the field existed.
	Schema int `json:"schema,omitempty"`
	// When is an opaque caller-supplied timestamp (RFC 3339 by
	// convention); the comparison helpers never parse it.
	When string `json:"when,omitempty"`
	// Seed, Pods and Procs identify the measured configuration.
	Seed  int64 `json:"seed"`
	Pods  int   `json:"pods"`
	Procs int   `json:"procs"`
	// Workers is the parallel pool width used for the parallel arm.
	Workers int `json:"workers"`

	// SeqSimMs and ParSimMs are the modeled coordinated-checkpoint
	// times (simulated milliseconds) with Workers=1 vs Workers=N on the
	// same deterministic run; SimSpeedup is their ratio.
	SeqSimMs   float64 `json:"seq_sim_ms"`
	ParSimMs   float64 `json:"par_sim_ms"`
	SimSpeedup float64 `json:"sim_speedup"`

	// FullBytes / DeltaBytes are the average wire bytes of a full vs an
	// incremental (delta) generation over the measured checkpoint
	// sequence; BytesReduction is full/delta.
	FullBytes      int64   `json:"full_bytes"`
	DeltaBytes     int64   `json:"delta_bytes"`
	BytesReduction float64 `json:"bytes_reduction"`

	// EncodeMBps is the host wall-clock serialization throughput of the
	// parallel encoder over the run's images (MiB/s). This is the
	// figure zapc-benchdiff guards against regression.
	EncodeMBps float64 `json:"encode_mbps"`
	// PeakBufferedBytes is the largest amount of record data any
	// streaming serializer held in memory at once during the run. The
	// version-2 chunked format keeps it O(chunk size); zapc-benchdiff
	// guards it against regression alongside throughput. Zero in
	// records written before the field existed.
	PeakBufferedBytes int64 `json:"peak_buffered_bytes,omitempty"`
	// SuspendUs is the modeled pod-suspension window of a pre-copy
	// checkpoint (simulated microseconds, worst pod): SIGSTOP to resume,
	// covering only the residual dirty set plus network state.
	// ScSuspendUs is the stop-and-copy suspension window at the same
	// image size — the baseline the pre-copy window is measured against.
	// Zero in records written before the fields existed.
	SuspendUs   float64 `json:"suspend_us,omitempty"`
	ScSuspendUs float64 `json:"sc_suspend_us,omitempty"`
	// EncodeRawMBps is EncodeMBps with per-frame compression disabled
	// (version-3 RAW frames), and DecodeMBps / DecodeRawMBps are the
	// matching deserialization throughputs; together they price the
	// compression arm of the frame format. Zero in records written
	// before the fields existed.
	EncodeRawMBps float64 `json:"encode_raw_mbps,omitempty"`
	DecodeMBps    float64 `json:"decode_mbps,omitempty"`
	DecodeRawMBps float64 `json:"decode_raw_mbps,omitempty"`
	// StoredBytesPerGen is the average physical growth of the
	// content-deduplicated image store per incremental generation —
	// unique new blocks plus manifests, after compression and dedup.
	// LogicalBytesPerGen is the matching uncompressed, undeduplicated
	// figure, so their ratio is the end-to-end storage reduction.
	// zapc-benchdiff guards StoredBytesPerGen against growth. Zero in
	// records written before the fields existed.
	StoredBytesPerGen  int64 `json:"stored_bytes_per_gen,omitempty"`
	LogicalBytesPerGen int64 `json:"logical_bytes_per_gen,omitempty"`
	// PrecopyRounds and PrecopyResentBytes describe the live iteration
	// that bought the short window: how many copy rounds ran before
	// convergence (base included) and how many extra bytes the re-copies
	// cost over a single full image.
	PrecopyRounds      int   `json:"precopy_rounds,omitempty"`
	PrecopyResentBytes int64 `json:"precopy_resent_bytes,omitempty"`
	// CoordPods / CoordFanout / CoordDepth identify the coordination
	// scaling point measured for the coord_* figures: a CoordPods-member
	// checkpoint run once over the flat star and once over a
	// CoordFanout-ary tree. CoordBarrierUs is the tree run's
	// coordination barrier (manager invocation to the last agent's
	// start receipt, simulated microseconds) and CoordFlatBarrierUs the
	// flat run's; CoordRootMsgs / CoordFlatRootMsgs are the matching
	// root message counts. zapc-benchdiff guards CoordBarrierUs against
	// growth. Zero in records written before the fields existed.
	CoordPods          int     `json:"coord_pods,omitempty"`
	CoordFanout        int     `json:"coord_fanout,omitempty"`
	CoordDepth         int     `json:"coord_depth,omitempty"`
	CoordRootMsgs      int64   `json:"coord_root_msgs,omitempty"`
	CoordFlatRootMsgs  int64   `json:"coord_flat_root_msgs,omitempty"`
	CoordBarrierUs     float64 `json:"coord_barrier_us,omitempty"`
	CoordFlatBarrierUs float64 `json:"coord_flat_barrier_us,omitempty"`
	// RTOUs is the failover recovery window measured by the RTO
	// experiment arm: heartbeat-miss instant to pods-serving instant
	// (simulated microseconds). RPOUs is the matching data-loss window —
	// virtual time between the restored generation's commit and the
	// miss. The RTO*Us fields decompose RTOUs into its critical-path
	// segments (detection, decision, generation load, chain reconstruct,
	// restart barrier, per-pod restart, resume, retry wait), and
	// RTOCoveragePct is the share of the window those named segments
	// reconstruct (the analyzer's self-check; ~100 by construction).
	// zapc-benchdiff guards RTOUs against growth. Zero in records
	// written before the fields existed.
	RTOUs               float64 `json:"rto_us,omitempty"`
	RPOUs               float64 `json:"rpo_us,omitempty"`
	RTODetectUs         float64 `json:"rto_detect_us,omitempty"`
	RTODecideUs         float64 `json:"rto_decide_us,omitempty"`
	RTOLoadUs           float64 `json:"rto_load_us,omitempty"`
	RTOReconstructUs    float64 `json:"rto_reconstruct_us,omitempty"`
	RTORestartBarrierUs float64 `json:"rto_restart_barrier_us,omitempty"`
	RTORestartAgentUs   float64 `json:"rto_restart_agent_us,omitempty"`
	RTOResumeUs         float64 `json:"rto_resume_us,omitempty"`
	RTOWaitUs           float64 `json:"rto_wait_us,omitempty"`
	RTOCoveragePct      float64 `json:"rto_coverage_pct,omitempty"`
	// StandbyRTOUs is the recovery window of the same failover scenario
	// with a warm standby attached: promotion activates pre-built shadow
	// state in place, so the window contains no generation load or chain
	// reconstruct, only detection, a bounded catch-up
	// (StandbyCatchUpUs), and the warm restart. StandbyStoreRTOUs is the
	// same-seed store-restore baseline measured in the same run, and
	// StandbyRTOSpeedup their ratio (store/standby). zapc-benchdiff
	// guards StandbyRTOUs against growth and StandbyRTOSpeedup against
	// dipping below the order-of-magnitude floor. Zero in records
	// written before the fields existed.
	StandbyRTOUs      float64 `json:"standby_rto_us,omitempty"`
	StandbyStoreRTOUs float64 `json:"standby_store_rto_us,omitempty"`
	StandbyCatchUpUs  float64 `json:"standby_catch_up_us,omitempty"`
	StandbyRTOSpeedup float64 `json:"standby_rto_speedup,omitempty"`
	// WallNs is the host wall-clock time of the whole benchmark run.
	WallNs int64 `json:"wall_ns"`
}

// AppendRun appends rec to a trajectory previously serialized with
// AppendRun (or to an empty/nil buffer) and returns the new JSON bytes.
// A corrupt existing buffer is discarded rather than poisoning the
// trajectory.
func AppendRun(existing []byte, rec CkptBenchRecord) []byte {
	recs, err := DecodeTrajectory(existing)
	if err != nil {
		recs = nil
	}
	recs = append(recs, rec)
	out, _ := json.MarshalIndent(recs, "", "  ")
	return append(out, '\n')
}

// DecodeTrajectory parses a BENCH_ckpt.json trajectory. Nil or empty
// input decodes to an empty trajectory.
func DecodeTrajectory(data []byte) ([]CkptBenchRecord, error) {
	if len(data) == 0 {
		return nil, nil
	}
	var recs []CkptBenchRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("metrics: bad bench trajectory: %w", err)
	}
	return recs, nil
}

// CompareSchema refuses comparison of records written under different
// schema versions. The error says exactly how to get back to a
// comparable trajectory.
func CompareSchema(prev, cur CkptBenchRecord) error {
	if prev.Schema != cur.Schema {
		return fmt.Errorf("metrics: bench record schema mismatch: previous record has schema %d, current has schema %d (current tool writes schema %d) — the records are not comparable; delete the stale trajectory file and re-run `zapc-bench -fig ckpt` twice to rebuild a baseline",
			prev.Schema, cur.Schema, BenchSchema)
	}
	return nil
}

// CompareThroughput checks cur against prev and returns an error when
// the encode throughput regressed by more than tolPct percent. Other
// fields are informational; throughput is the guarded metric because it
// is the only host-hardware-dependent one.
func CompareThroughput(prev, cur CkptBenchRecord, tolPct float64) error {
	if prev.EncodeMBps <= 0 {
		return nil // nothing to compare against
	}
	drop := 100 * (prev.EncodeMBps - cur.EncodeMBps) / prev.EncodeMBps
	if drop > tolPct {
		return fmt.Errorf("encode throughput regressed %.1f%% (%.1f -> %.1f MiB/s, tolerance %.0f%%)",
			drop, prev.EncodeMBps, cur.EncodeMBps, tolPct)
	}
	return nil
}

// CompareSuspend checks cur against prev and returns an error when the
// pre-copy suspension window grew by more than tolPct percent — the
// regression that would mean the quiesce window is sliding back toward
// O(image). Records from before the field existed (prev <= 0) compare
// clean.
func CompareSuspend(prev, cur CkptBenchRecord, tolPct float64) error {
	if prev.SuspendUs <= 0 {
		return nil // nothing to compare against
	}
	limit := prev.SuspendUs * (1 + tolPct/100)
	if cur.SuspendUs > limit {
		growth := 100 * (cur.SuspendUs - prev.SuspendUs) / prev.SuspendUs
		return fmt.Errorf("pre-copy suspend window regressed %.1f%% (%.0f -> %.0f us, tolerance %.0f%%)",
			growth, prev.SuspendUs, cur.SuspendUs, tolPct)
	}
	return nil
}

// CompareStoredBytes checks cur against prev and returns an error when
// the deduplicated store's per-generation physical growth rose by more
// than tolPct percent — the regression that would mean compression or
// cross-generation dedup quietly stopped working. Records from before
// the field existed (prev <= 0) compare clean.
func CompareStoredBytes(prev, cur CkptBenchRecord, tolPct float64) error {
	if prev.StoredBytesPerGen <= 0 {
		return nil // nothing to compare against
	}
	limit := float64(prev.StoredBytesPerGen) * (1 + tolPct/100)
	if float64(cur.StoredBytesPerGen) > limit {
		growth := 100 * float64(cur.StoredBytesPerGen-prev.StoredBytesPerGen) / float64(prev.StoredBytesPerGen)
		return fmt.Errorf("stored bytes per generation regressed %.1f%% (%d -> %d bytes, tolerance %.0f%%)",
			growth, prev.StoredBytesPerGen, cur.StoredBytesPerGen, tolPct)
	}
	return nil
}

// CompareCoordBarrier checks cur against prev and returns an error
// when the tree-coordinated barrier time grew by more than tolPct
// percent — the regression that would mean the coordination tree's
// fan-out/fan-in batching quietly degraded back toward the flat O(N)
// serialization. Records from before the field existed (prev <= 0)
// compare clean.
func CompareCoordBarrier(prev, cur CkptBenchRecord, tolPct float64) error {
	if prev.CoordBarrierUs <= 0 {
		return nil // nothing to compare against
	}
	limit := prev.CoordBarrierUs * (1 + tolPct/100)
	if cur.CoordBarrierUs > limit {
		growth := 100 * (cur.CoordBarrierUs - prev.CoordBarrierUs) / prev.CoordBarrierUs
		return fmt.Errorf("coordination barrier regressed %.1f%% (%.0f -> %.0f us, tolerance %.0f%%)",
			growth, prev.CoordBarrierUs, cur.CoordBarrierUs, tolPct)
	}
	return nil
}

// CompareRTO checks cur against prev and returns an error when the
// failover recovery window grew by more than tolPct percent — the
// regression that would mean recovery quietly got slower (a longer
// outage per failure) even though every checkpoint-path figure still
// looks healthy. Records from before the field existed (prev <= 0)
// compare clean.
func CompareRTO(prev, cur CkptBenchRecord, tolPct float64) error {
	if prev.RTOUs <= 0 {
		return nil // nothing to compare against
	}
	limit := prev.RTOUs * (1 + tolPct/100)
	if cur.RTOUs > limit {
		growth := 100 * (cur.RTOUs - prev.RTOUs) / prev.RTOUs
		return fmt.Errorf("failover RTO regressed %.1f%% (%.0f -> %.0f us, tolerance %.0f%%)",
			growth, prev.RTOUs, cur.RTOUs, tolPct)
	}
	return nil
}

// StandbySpeedupFloor is the minimum store-restore-to-standby RTO ratio
// the warm-standby path must maintain: promotion that is not at least
// an order of magnitude faster than reading the chain back from the
// store means the shadow state quietly stopped being warm.
const StandbySpeedupFloor = 10.0

// CompareStandbyRTO checks the warm-standby recovery window: an error
// when cur's standby RTO grew more than tolPct percent over prev, or
// when cur's store-vs-standby speedup fell below StandbySpeedupFloor.
// Records from before the fields existed (prev or cur <= 0) compare
// clean on the missing side.
func CompareStandbyRTO(prev, cur CkptBenchRecord, tolPct float64) error {
	if cur.StandbyRTOUs > 0 && cur.StandbyRTOSpeedup > 0 && cur.StandbyRTOSpeedup < StandbySpeedupFloor {
		return fmt.Errorf("standby promotion speedup %.1fx is below the %.0fx floor (standby rto %.0f us vs store rto %.0f us)",
			cur.StandbyRTOSpeedup, StandbySpeedupFloor, cur.StandbyRTOUs, cur.StandbyStoreRTOUs)
	}
	if prev.StandbyRTOUs <= 0 {
		return nil // nothing to compare against
	}
	limit := prev.StandbyRTOUs * (1 + tolPct/100)
	if cur.StandbyRTOUs > limit {
		growth := 100 * (cur.StandbyRTOUs - prev.StandbyRTOUs) / prev.StandbyRTOUs
		return fmt.Errorf("standby failover RTO regressed %.1f%% (%.0f -> %.0f us, tolerance %.0f%%)",
			growth, prev.StandbyRTOUs, cur.StandbyRTOUs, tolPct)
	}
	return nil
}

// ComparePeakBuffered checks cur against prev and returns an error when
// the streaming serializer's peak buffering grew by more than tolPct
// percent — the regression that would mean a full image is being
// materialized again. Records from before the field existed (prev <= 0)
// compare clean.
func ComparePeakBuffered(prev, cur CkptBenchRecord, tolPct float64) error {
	if prev.PeakBufferedBytes <= 0 {
		return nil // nothing to compare against
	}
	limit := float64(prev.PeakBufferedBytes) * (1 + tolPct/100)
	if float64(cur.PeakBufferedBytes) > limit {
		growth := 100 * (float64(cur.PeakBufferedBytes) - float64(prev.PeakBufferedBytes)) / float64(prev.PeakBufferedBytes)
		return fmt.Errorf("peak buffered bytes regressed %.1f%% (%d -> %d bytes, tolerance %.0f%%)",
			growth, prev.PeakBufferedBytes, cur.PeakBufferedBytes, tolPct)
	}
	return nil
}
