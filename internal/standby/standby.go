// Package standby implements the warm-standby continuous replication
// plane: a spare node that trails the primary's checkpoint stream by at
// most one generation so failover can promote pre-built shadow state
// instead of reading the whole image chain back from the shared store.
//
// The primary's supervisor ships every committed generation — full
// images and incremental deltas alike — over the same virtual-TCP
// image transport the migration path uses (imagestore.Remote feeding an
// imagestore.Server on the standby). Each record lands in the standby's
// local mirror store; once a generation's records are all in, the plane
// applies them into its shadow images (decode + chain reconstruction
// for full generations, ApplyDelta for incremental ones) and advances
// its acknowledgement watermark. Because application uses the exact
// decoders the store-restore path uses over byte-identical records, a
// promoted standby restarts from byte-identical state.
//
// The watermark is the coordination contract with the primary: the
// supervisor never garbage-collects a generation chain the standby has
// not acknowledged (a cut stream resumes by re-shipping everything past
// the watermark, so those records must still exist), and promotion
// hands over state exactly as of the watermark after a bounded
// catch-up. A replication failure — cut feed, crashed standby, stalled
// transfer — surfaces as a named error on that sync and never aborts
// the primary's checkpoint cycle.
package standby

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"zapc/internal/ckpt"
	"zapc/internal/imagestore"
	"zapc/internal/memfs"
	"zapc/internal/netstack"
	"zapc/internal/sim"
	"zapc/internal/supervisor"
	"zapc/internal/trace"
	"zapc/internal/vos"
)

// Errors surfaced by the replication plane.
var (
	// ErrNotReady is returned when a sync or promotion reaches a plane
	// whose node has failed or that a previous promotion consumed.
	ErrNotReady = errors.New("standby: replica not ready")
	// ErrStalled is returned when a replication sync makes no progress
	// within the stall timeout — the "fail named, never hang" contract
	// for transfers the transport itself cannot classify.
	ErrStalled = errors.New("standby: replication stream stalled")
	// ErrPromoted is returned by a second promotion attempt.
	ErrPromoted = errors.New("standby: already promoted")
)

// Config tunes the replication plane.
type Config struct {
	// Port is the standby image server's listen port (default 7200).
	Port netstack.Port
	// StallTimeout bounds one replication sync before it fails with
	// ErrStalled (default 30s of virtual time).
	StallTimeout sim.Duration
}

func (c Config) withDefaults() Config {
	if c.Port == 0 {
		c.Port = 7200
	}
	if c.StallTimeout == 0 {
		c.StallTimeout = 30 * sim.Second
	}
	return c
}

// Stats counts plane activity.
type Stats struct {
	Syncs        int   // replication syncs started
	SyncErrors   int   // syncs that failed (cut, stall, apply error)
	GensApplied  int   // generations applied into shadow state
	BytesApplied int64 // serialized record bytes applied
}

// Plane is one warm standby: the replication receiver, the shadow
// state, and the promotion handover. It implements supervisor.Replica.
type Plane struct {
	w    *sim.World
	node *vos.Node
	cfg  Config

	src   imagestore.Store       // primary's store, read side
	out   *imagestore.TruncStore // remote client, armable for feed cuts
	srv   *imagestore.Server
	local imagestore.Store // standby-side mirror

	tr  *trace.Tracer
	reg *trace.Registry

	gens     []supervisor.Generation // applied generations, ascending seq
	shadows  map[string]*ckpt.Image  // pod name -> materialized shadow
	sums     map[string]uint32       // pod name -> CRC of last applied record
	ackedSeq int
	appliedT sim.Time
	promoted bool

	// One sync in flight at a time; shipping is a sequential state
	// machine driven by server commit callbacks.
	syncing  bool
	queue    []supervisor.Generation
	files    []string
	cur      supervisor.Generation
	want     string // path whose server-side commit we are waiting for
	doneFn   func(error)
	span     *trace.Span
	watchdog sim.EventID
	lastSeq  int // newest seq known at sync start, for the lag gauge

	applying  bool
	promoteCb func(images []*ckpt.Image, genT sim.Time, err error)

	stats Stats
}

// New builds a replication plane on the given standby node. src is the
// primary's image store (records are read from it at ship time);
// clientIP and serverIP are the plane's two transport endpoints on the
// cluster interconnect and must not collide with job VIPs.
func New(w *sim.World, nw *netstack.Network, node *vos.Node, src imagestore.Store,
	clientIP, serverIP netstack.IP, cfg Config) (*Plane, error) {
	cfg = cfg.withDefaults()
	p := &Plane{
		w:        w,
		node:     node,
		cfg:      cfg,
		src:      src,
		local:    imagestore.NewFS(memfs.New()),
		shadows:  make(map[string]*ckpt.Image),
		sums:     make(map[string]uint32),
		ackedSeq: -1,
	}
	srv, err := imagestore.NewServer(nw, serverIP, cfg.Port, p.local)
	if err != nil {
		return nil, fmt.Errorf("standby: server: %w", err)
	}
	p.srv = srv
	srv.SetOnImage(p.onRecord)
	srv.SetOnError(p.onTransferError)
	remote, err := imagestore.NewRemote(nw, clientIP, srv.Addr())
	if err != nil {
		return nil, fmt.Errorf("standby: client: %w", err)
	}
	p.out = imagestore.Truncating(remote)
	return p, nil
}

// SetTracer installs the observability pair ("standby/replicate" and
// "standby/apply" spans on the standby track, standby_* instruments).
// Either may be nil.
func (p *Plane) SetTracer(tr *trace.Tracer, reg *trace.Registry) {
	p.tr = tr
	p.reg = reg
}

// Node returns the standby node promotion places the pods onto.
func (p *Plane) Node() *vos.Node { return p.node }

// AckedSeq is the newest generation sequence fully received and applied
// into the shadows (-1 before the first).
func (p *Plane) AckedSeq() int { return p.ackedSeq }

// Ready reports whether the plane can still be promoted.
func (p *Plane) Ready() bool { return !p.promoted && !p.node.Failed() }

// Stats returns activity counters.
func (p *Plane) Stats() Stats { return p.stats }

// Trunc exposes the armable truncation wrapper on the replication feed,
// for fault injection: arming writes cuts the next shipped records
// mid-stream with imagestore.ErrTruncatedStream.
func (p *Plane) Trunc() *imagestore.TruncStore { return p.out }

// LocalStore returns the standby-side mirror store (for tests asserting
// replicated bytes match the primary's records).
func (p *Plane) LocalStore() imagestore.Store { return p.local }

// AppliedGenerations returns a copy of the generations applied into the
// shadows so far, oldest first (for tests reconstructing the same chain
// from the primary's store to compare against the shadows byte for
// byte).
func (p *Plane) AppliedGenerations() []supervisor.Generation {
	return append([]supervisor.Generation(nil), p.gens...)
}

// ShadowImages returns the current shadow images sorted by pod name.
func (p *Plane) ShadowImages() []*ckpt.Image {
	images := make([]*ckpt.Image, 0, len(p.shadows))
	for _, img := range p.shadows {
		images = append(images, img)
	}
	sort.Slice(images, func(i, j int) bool { return images[i].PodName < images[j].PodName })
	return images
}

// Sync ships every generation past the ack watermark to the standby,
// oldest first, applying each into the shadows. It implements
// supervisor.Replica: done fires exactly once, and a failure leaves the
// watermark wherever the last fully applied generation put it, so the
// next sync resumes from there.
func (p *Plane) Sync(gens []supervisor.Generation, done func(error)) {
	if done == nil {
		done = func(error) {}
	}
	if !p.Ready() {
		done(ErrNotReady)
		return
	}
	if p.syncing {
		done(fmt.Errorf("standby: sync already in flight"))
		return
	}
	var queue []supervisor.Generation
	for _, g := range gens {
		if g.Seq > p.ackedSeq {
			queue = append(queue, g)
		}
	}
	if len(queue) == 0 {
		done(nil)
		return
	}
	p.syncing = true
	p.queue = queue
	p.doneFn = done
	p.lastSeq = queue[len(queue)-1].Seq
	p.setLag()
	p.stats.Syncs++
	p.span = p.tr.Start(nil, "standby/replicate", trace.Track("standby"),
		trace.I64("from_seq", int64(queue[0].Seq)), trace.I64("to_seq", int64(p.lastSeq)))
	p.watchdog = p.w.After(p.cfg.StallTimeout, func() {
		if !p.syncing || p.promoted {
			return
		}
		p.want = ""
		p.failSync(fmt.Errorf("%w: no acknowledgement within %v", ErrStalled, p.cfg.StallTimeout))
	})
	// The supervisor-to-standby control hop that opens the sync.
	p.w.After(p.w.Costs.CtrlLatency, p.nextGen)
}

// aborted checks the plane's liveness mid-sync. A promotion abandons
// the sync silently (the supervisor is recovering and will never hear
// the callback); a node failure fails it named.
func (p *Plane) aborted() bool {
	if p.promoted {
		return true
	}
	if p.node.Failed() {
		p.failSync(fmt.Errorf("standby: node %s failed mid-replication", p.node.Name()))
		return true
	}
	return false
}

func (p *Plane) nextGen() {
	if !p.syncing || p.aborted() {
		return
	}
	if len(p.queue) == 0 {
		p.finishSync(nil)
		return
	}
	p.cur = p.queue[0]
	p.queue = p.queue[1:]
	files := p.src.List(p.cur.Dir)
	if len(files) == 0 {
		p.failSync(fmt.Errorf("standby: generation %s vanished from the primary store before replication", p.cur.Dir))
		return
	}
	sort.Strings(files)
	p.files = files
	p.nextFile()
}

func (p *Plane) nextFile() {
	if !p.syncing || p.aborted() {
		return
	}
	if len(p.files) == 0 {
		p.applyGen()
		return
	}
	path := p.files[0]
	p.files = p.files[1:]
	if err := p.ship(path); err != nil {
		p.failSync(err)
		return
	}
	p.want = path
	// The server's commit (or failure) callback drives the next step.
}

// ship stages one record into the replication stream. Errors from the
// armed truncation wrapper or the transport already name the pod and
// wrap imagestore.ErrTruncatedStream.
func (p *Plane) ship(path string) error {
	rc, err := p.src.Open(path)
	if err != nil {
		return fmt.Errorf("standby: reading %s: %w", path, err)
	}
	defer rc.Close()
	wc, err := p.out.Create(path)
	if err != nil {
		return fmt.Errorf("standby: opening replication stream for %s: %w", path, err)
	}
	buf := make([]byte, 64<<10)
	for {
		n, rerr := rc.Read(buf)
		if n > 0 {
			if _, werr := wc.Write(buf[:n]); werr != nil {
				return werr
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return fmt.Errorf("standby: reading %s: %w", path, rerr)
		}
	}
	return wc.Close()
}

// onRecord fires when the server commits a fully received record into
// the local mirror.
func (p *Plane) onRecord(path string) {
	p.reg.Counter("standby_replicated_records_total").Add(1)
	if !p.syncing || path != p.want {
		return // late commit of an abandoned transfer
	}
	p.want = ""
	p.nextFile()
}

// onTransferError fires when a transfer dies server-side without
// committing (the stream was cut between client and server).
func (p *Plane) onTransferError(path string, err error) {
	if !p.syncing || (p.want != "" && path != p.want && path != "") {
		return
	}
	p.want = ""
	p.failSync(err)
}

// applyGen charges the apply cost for the fully received generation,
// then materializes it into the shadows and advances the watermark.
func (p *Plane) applyGen() {
	g := p.cur
	costs := p.w.Costs
	eff := costs.EffImageBytes(g.Bytes)
	var cost sim.Duration
	if g.Full {
		cost = costs.RestoreTime(eff)
	} else {
		cost = costs.MemCopyTime(eff)
	}
	span := p.tr.Start(nil, "standby/apply", trace.Track("standby"),
		trace.Str("dir", g.Dir), trace.I64("seq", int64(g.Seq)), trace.I64("bytes", g.Bytes))
	p.applying = true
	p.w.After(cost, func() {
		p.applying = false
		shadows, sums, err := p.materialize(g)
		if err == nil {
			p.shadows, p.sums = shadows, sums
			p.gens = append(p.gens, g)
			p.ackedSeq = g.Seq
			p.appliedT = g.T
			p.stats.GensApplied++
			p.stats.BytesApplied += g.Bytes
			p.reg.Counter("standby_applied_bytes_total").Add(g.Bytes)
			p.reg.Counter("standby_applied_gens_total").Add(1)
			p.setLag()
			span.End(trace.I64("acked_seq", int64(p.ackedSeq)))
		} else {
			span.End(trace.Str("err", err.Error()))
		}
		if p.promoted {
			// The bounded catch-up of a promotion that arrived mid-apply:
			// hand over whatever state is now current.
			if p.promoteCb != nil {
				p.finishPromotion()
			}
			return
		}
		if err != nil {
			p.failSync(fmt.Errorf("standby: applying %s: %w", g.Dir, err))
			return
		}
		p.pruneLocal(g)
		p.nextGen()
	})
}

// materialize builds the next shadow map from the local mirror's
// records for generation g. Full generations replace the shadows
// wholesale (reconstructing any pre-copy chain within the directory);
// delta generations apply one residual delta per pod onto its shadow,
// verifying the delta's parent checksum against the CRC of the record
// the shadow was built from — the same chain validation the
// store-restore path performs. The current shadows are never modified,
// so a failed apply leaves the previous acknowledged state intact.
func (p *Plane) materialize(g supervisor.Generation) (map[string]*ckpt.Image, map[string]uint32, error) {
	files := p.local.List(g.Dir)
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("generation %s: no replicated records", g.Dir)
	}
	if g.Full {
		chains := imagestore.PodChains(files)
		names := make([]string, 0, len(chains))
		for name := range chains {
			names = append(names, name)
		}
		sort.Strings(names)
		shadows := make(map[string]*ckpt.Image, len(chains))
		sums := make(map[string]uint32, len(chains))
		for _, name := range names {
			paths := chains[name]
			var lastSum uint32
			img, err := ckpt.ReconstructChainFrom(len(paths), func(i int) (io.ReadCloser, error) {
				rc, err := p.local.Open(paths[i])
				if err != nil {
					return nil, err
				}
				cr := &crcReadCloser{rc: rc}
				if i == len(paths)-1 {
					cr.sink = &lastSum
				}
				return cr, nil
			})
			if err != nil {
				return nil, nil, fmt.Errorf("pod %s: %w", name, err)
			}
			shadows[name] = img
			sums[name] = lastSum
		}
		return shadows, sums, nil
	}
	shadows := make(map[string]*ckpt.Image, len(p.shadows))
	sums := make(map[string]uint32, len(p.sums))
	for k, v := range p.shadows {
		shadows[k] = v
		sums[k] = p.sums[k]
	}
	sort.Strings(files)
	for _, f := range files {
		name := imagestore.PodOf(f)
		base, ok := shadows[name]
		if !ok {
			return nil, nil, fmt.Errorf("pod %s: delta %s has no shadow base", name, f)
		}
		rc, err := p.local.Open(f)
		if err != nil {
			return nil, nil, err
		}
		var sum uint32
		cr := &crcReadCloser{rc: rc, sink: &sum}
		d, err := ckpt.DecodeDeltaFrom(cr)
		cr.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("pod %s (%s): %w", name, f, err)
		}
		if d.ParentSum != sums[name] {
			return nil, nil, fmt.Errorf("pod %s (%s): %w: parent checksum %08x, shadow built from %08x",
				name, f, ckpt.ErrChainBroken, d.ParentSum, sums[name])
		}
		img, err := ckpt.ApplyDelta(base, d)
		if err != nil {
			return nil, nil, fmt.Errorf("pod %s: %w", name, err)
		}
		shadows[name] = img
		sums[name] = sum
	}
	return shadows, sums, nil
}

// pruneLocal drops mirrored generations made obsolete by a newly
// applied full generation: the shadows no longer chain through them.
func (p *Plane) pruneLocal(g supervisor.Generation) {
	if !g.Full {
		return
	}
	kept := p.gens[:0]
	for _, og := range p.gens {
		if og.Seq < g.Seq {
			for _, f := range p.local.List(og.Dir) {
				p.local.Remove(f)
			}
			continue
		}
		kept = append(kept, og)
	}
	p.gens = kept
}

func (p *Plane) finishSync(err error) {
	if !p.syncing {
		return
	}
	p.syncing = false
	p.want = ""
	p.files, p.queue = nil, nil
	p.w.Cancel(p.watchdog)
	if p.span != nil {
		if err != nil {
			p.span.End(trace.Str("err", err.Error()))
		} else {
			p.span.End(trace.I64("acked_seq", int64(p.ackedSeq)))
		}
		p.span = nil
	}
	done := p.doneFn
	p.doneFn = nil
	if done != nil {
		done(err)
	}
}

func (p *Plane) failSync(err error) {
	if !p.syncing {
		return
	}
	p.stats.SyncErrors++
	p.reg.Counter("standby_sync_errors_total").Add(1)
	p.finishSync(err)
}

// Promote retires the plane and hands over the shadow images. If a
// fully received generation is mid-apply, the handover waits for it —
// the bounded catch-up — but an incompletely received generation is
// abandoned: promotion state is exactly the acknowledgement watermark.
func (p *Plane) Promote(cb func(images []*ckpt.Image, genT sim.Time, err error)) {
	if cb == nil {
		cb = func([]*ckpt.Image, sim.Time, error) {}
	}
	if p.promoted {
		cb(nil, 0, ErrPromoted)
		return
	}
	p.promoted = true
	p.promoteCb = cb
	if p.applying {
		return // the pending apply completes the handover
	}
	p.finishPromotion()
}

func (p *Plane) finishPromotion() {
	cb := p.promoteCb
	p.promoteCb = nil
	p.w.Cancel(p.watchdog)
	if len(p.shadows) == 0 {
		cb(nil, 0, fmt.Errorf("standby: no generation applied before promotion"))
		return
	}
	cb(p.ShadowImages(), p.appliedT, nil)
}

func (p *Plane) setLag() {
	lag := int64(p.lastSeq - p.ackedSeq)
	if lag < 0 {
		lag = 0
	}
	p.reg.Gauge("standby_lag_gens").Set(lag)
}

// crcReadCloser mirrors the chain decoder's record checksumming
// (crc32.ChecksumIEEE over the serialized record) so delta parent sums
// can be verified across generations.
type crcReadCloser struct {
	rc   io.ReadCloser
	sum  uint32
	sink *uint32
}

func (c *crcReadCloser) Read(p []byte) (int, error) {
	n, err := c.rc.Read(p)
	c.sum = crc32.Update(c.sum, crc32.IEEETable, p[:n])
	if c.sink != nil {
		*c.sink = c.sum
	}
	return n, err
}

func (c *crcReadCloser) Close() error { return c.rc.Close() }
