// Replication-feed resilience: a cut standby feed must surface as a
// named imagestore.ErrTruncatedStream, must never abort the primary's
// checkpoint cycle, and the replicator must resume from the last acked
// generation on the next committed checkpoint — converging back to the
// primary's watermark without any operator action.
package standby_test

import (
	"strings"
	"testing"

	"zapc/internal/cluster"
	"zapc/internal/sim"
	"zapc/internal/supervisor"
)

const deadline = 30 * 60 * sim.Second

func TestStandbyFeedCutResumesFromWatermark(t *testing.T) {
	spec := cluster.JobSpec{App: "cpi", Endpoints: 4, Work: 0.25, Scale: 0.001}
	const seed = 13

	// Reference duration for a sane checkpoint cadence.
	ref := cluster.New(cluster.Config{Nodes: 4, Seed: seed})
	refJob, err := ref.Launch(spec)
	if err != nil {
		t.Fatal(err)
	}
	refDur, err := ref.RunJob(refJob, deadline)
	if err != nil {
		t.Fatal(err)
	}

	c := cluster.New(cluster.Config{Nodes: 4, Seed: seed})
	job, err := c.Launch(spec)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := c.Supervise(job, supervisor.Policy{
		HeartbeatInterval: 50 * sim.Millisecond,
		CheckpointEvery:   refDur / 24,
		Incremental:       true,
		Workers:           3,
		Retain:            2,
		Dir:               "sbcut",
	})
	if err != nil {
		t.Fatal(err)
	}
	plane, err := c.AttachStandby(sup, cluster.StandbyConfig{})
	if err != nil {
		t.Fatal(err)
	}

	// Let the first generation replicate cleanly, then cut the next
	// shipped record mid-stream.
	if err := c.Drive(func() bool {
		return plane.AckedSeq() >= 0 || job.Finished()
	}, deadline); err != nil {
		t.Fatal(err)
	}
	if job.Finished() {
		t.Fatal("job finished before the first replication — raise Work")
	}
	watermark := plane.AckedSeq()
	ckptsAtCut := sup.Stats().Checkpoints
	plane.Trunc().ArmWrites(1)

	if err := c.Drive(func() bool {
		return sup.Stats().ReplicaErrors >= 1 || job.Finished()
	}, deadline); err != nil {
		t.Fatal(err)
	}
	if job.Finished() {
		t.Fatal("job finished before the cut fired — raise Work")
	}
	if cuts := plane.Trunc().Cuts(); len(cuts) != 1 {
		t.Fatalf("expected exactly one cut stream, got %v", cuts)
	}

	// The failure must be the named truncation error, carrying both the
	// pod whose stream died and the generation the stream will resume
	// past.
	errEvents := sup.EventsOf(supervisor.EvReplicaErr)
	if len(errEvents) == 0 {
		t.Fatalf("no replica-error event; events: %v", sup.Events())
	}
	detail := errEvents[0].Detail
	if !strings.Contains(detail, "image stream truncated") {
		t.Fatalf("replication failure is not the named truncation error: %q", detail)
	}
	if !strings.Contains(detail, "pod ") {
		t.Fatalf("truncation error does not name the pod: %q", detail)
	}
	if !strings.Contains(detail, "resume past gen seq") {
		t.Fatalf("truncation error does not name the resume generation: %q", detail)
	}

	// The cut must not have rolled back the watermark, aborted the
	// primary's checkpoint cycle, or triggered a failover.
	if got := plane.AckedSeq(); got < watermark {
		t.Fatalf("ack watermark went backwards: %d -> %d", watermark, got)
	}
	st := sup.Stats()
	if st.Failovers != 0 {
		t.Fatalf("replication cut triggered %d failover(s)", st.Failovers)
	}
	if sup.Err() != nil {
		t.Fatalf("supervisor halted on a replication cut: %v", sup.Err())
	}

	// Resume: the next committed generations re-trigger the sync from
	// the watermark; the standby must catch back up past the cut point
	// while the primary's checkpoint cadence continues undisturbed.
	target := watermark + 2
	if err := c.Drive(func() bool {
		return plane.AckedSeq() >= target || job.Finished()
	}, deadline); err != nil {
		t.Fatalf("standby never caught up past the cut: %v (acked %d, want %d)",
			err, plane.AckedSeq(), target)
	}
	if sup.Stats().Checkpoints <= ckptsAtCut {
		t.Fatal("primary checkpoint cycle stalled across the cut")
	}
	pst := plane.Stats()
	if pst.SyncErrors < 1 {
		t.Fatalf("plane recorded no sync error: %+v", pst)
	}
	if pst.Syncs < 2 {
		t.Fatalf("plane never resumed after the cut: %+v", pst)
	}
	if !plane.Ready() {
		t.Fatal("plane no longer promotable after a recovered cut")
	}

	// The run must still finish with the replica attached and healthy.
	sup.Stop()
	if err := c.Drive(job.Finished, deadline); err != nil {
		t.Fatal(err)
	}
	if got := job.Result(); got != refJob.Result() {
		t.Fatalf("supervised result %v != reference %v", got, refJob.Result())
	}
}
