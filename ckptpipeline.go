package zapc

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"zapc/internal/ckpt"
	"zapc/internal/core"
	"zapc/internal/imgfmt"
	"zapc/internal/metrics"
)

// CkptPipelineRow reports one run of the parallel/incremental
// checkpoint-pipeline benchmark: the same deterministic job is
// checkpointed with a sequential serializer, with the bounded worker
// pool, and with incremental (base+delta) capture, so the three arms
// are directly comparable.
type CkptPipelineRow struct {
	App     string
	Pods    int
	Procs   int
	Workers int

	// Modeled coordinated-checkpoint time, Workers=1 vs Workers=N.
	SeqCkpt    Duration
	ParCkpt    Duration
	SimSpeedup float64

	// Average wire bytes per generation, full vs delta, over the
	// incremental arm's checkpoint sequence.
	FullBytes      int64
	DeltaBytes     int64
	BytesReduction float64

	// Host wall-clock serialization throughput of the parallel encoder
	// over the run's images (MiB/s), and total harness wall time.
	EncodeMBps float64
	Wall       time.Duration

	// PeakBufferedBytes is the largest amount of record data any
	// streaming serializer held in memory at once across every
	// checkpoint of the run — the invariant the version-2 chunked
	// format exists to bound. It stays O(chunk size), never O(image).
	PeakBufferedBytes int64

	// ScSuspend and PrecopySuspend are the modeled pod-suspension
	// windows (worst pod) of the stop-and-copy parallel arm and the
	// pre-copy arm at the same progress point and image size;
	// SuspendReduction is their ratio — the downtime win the pre-copy
	// iteration buys. PrecopyRounds counts the live copy rounds (base
	// included) and PrecopyResentBytes the extra wire bytes those
	// re-copies cost over a single full image.
	ScSuspend          Duration
	PrecopySuspend     Duration
	SuspendReduction   float64
	PrecopyRounds      int
	PrecopyResentBytes int64

	// EncodeRawMBps / DecodeMBps / DecodeRawMBps price the version-3
	// frame compression arm: host wall-clock stream encode with RAW
	// frames, and decode of compressed vs RAW records.
	EncodeRawMBps float64
	DecodeMBps    float64
	DecodeRawMBps float64

	// StoredBytesPerGen is the average physical growth of the
	// content-deduplicated image store per generation of the incremental
	// arm (unique blocks + manifests, after compression and dedup);
	// LogicalBytesPerGen is the matching uncompressed, undeduplicated
	// image volume. Their ratio is the end-to-end storage reduction.
	StoredBytesPerGen  int64
	LogicalBytesPerGen int64
}

// ckptAt drives the job to the given progress and takes one snapshot
// checkpoint with the given options, returning the result.
func ckptAt(c *Cluster, job *Job, target float64, opts core.Options) (*core.CheckpointResult, error) {
	if err := c.Drive(func() bool { return job.Progress() >= target || job.Finished() }, runDeadline); err != nil {
		return nil, err
	}
	if job.Finished() {
		return nil, fmt.Errorf("job finished before %.0f%% checkpoint", 100*target)
	}
	return c.Checkpoint(job, opts)
}

// RunCkptPipeline measures the checkpoint pipeline for one (app,
// endpoints) configuration. workers <= 0 selects one worker per host
// CPU, floored at 4 so the parallel arm stays meaningful on small
// hosts (the modeled pool width does not require host cores). The
// sequential and parallel arms run the same seed, so the two modeled
// checkpoint times differ only by the worker-pool width; the
// incremental arm takes cfg.Checkpoints snapshots through an IncrSet
// and reports the full-vs-delta wire economics.
func RunCkptPipeline(cfg ExperimentConfig, app string, endpoints, workers int) (CkptPipelineRow, error) {
	cfg = cfg.defaults()
	if workers <= 0 {
		if workers = ckpt.DefaultWorkers(); workers < 4 {
			workers = 4
		}
	}
	start := time.Now()
	row := CkptPipelineRow{App: app, Pods: endpoints, Workers: workers}

	// --- Arm 1+2: sequential vs parallel modeled checkpoint time on
	// identical cluster state (same seed, same progress point). The
	// parallel arm streams its records to the cluster's shared
	// filesystem (Options.FlushTo); they are read back from there for
	// the host-side encoder measurement — at no point does the
	// checkpoint path itself materialize a record.
	var records [][]byte
	for arm, w := range []int{1, workers} {
		c := clusterFor(endpoints, cfg)
		job, err := c.Launch(cfg.spec(app, endpoints, false))
		if err != nil {
			return row, err
		}
		opts := core.Options{Mode: core.Snapshot, Workers: w}
		if arm == 1 {
			opts.FlushTo = "bench/par"
		}
		res, err := ckptAt(c, job, 0.4, opts)
		if err != nil {
			return row, fmt.Errorf("ckpt pipeline %s/%d workers=%d: %w", app, endpoints, w, err)
		}
		for _, a := range res.Stats.Agents {
			if a.PeakBuffered > row.PeakBufferedBytes {
				row.PeakBufferedBytes = a.PeakBuffered
			}
		}
		if arm == 0 {
			row.SeqCkpt = res.Stats.Total
		} else {
			row.ParCkpt = res.Stats.Total
			row.ScSuspend = res.Stats.MaxSuspendWindow()
			records = records[:0]
			for _, a := range res.Stats.Agents {
				rec, err := c.FS.ReadFile(fmt.Sprintf("bench/par/%s.img", a.Pod))
				if err != nil {
					return row, fmt.Errorf("ckpt pipeline %s/%d: reading flushed image: %w", app, endpoints, err)
				}
				records = append(records, rec)
			}
		}
		if _, err := c.RunJob(job, runDeadline); err != nil {
			return row, err
		}
	}
	if row.ParCkpt > 0 {
		row.SimSpeedup = float64(row.SeqCkpt) / float64(row.ParCkpt)
	}

	// --- Arm 3: pre-copy. Same seed and progress point as the parallel
	// stop-and-copy arm, so the two suspension windows are measured at
	// equal image bytes; the difference is purely the mode — the pod
	// stays running through the base copy and the live rounds and is
	// quiesced only for the residual dirty set.
	{
		c := clusterFor(endpoints, cfg)
		job, err := c.Launch(cfg.spec(app, endpoints, false))
		if err != nil {
			return row, err
		}
		opts := core.Options{Mode: core.Snapshot, Workers: workers, FlushTo: "bench/pre", Precopy: &core.PrecopyOptions{}}
		res, err := ckptAt(c, job, 0.4, opts)
		if err != nil {
			return row, fmt.Errorf("ckpt pipeline %s/%d precopy: %w", app, endpoints, err)
		}
		row.PrecopySuspend = res.Stats.MaxSuspendWindow()
		for _, a := range res.Stats.Agents {
			if a.PrecopyRounds > row.PrecopyRounds {
				row.PrecopyRounds = a.PrecopyRounds
			}
			row.PrecopyResentBytes += a.PrecopyResentBytes
			if a.PeakBuffered > row.PeakBufferedBytes {
				row.PeakBufferedBytes = a.PeakBuffered
			}
		}
		if row.PrecopySuspend > 0 {
			row.SuspendReduction = float64(row.ScSuspend) / float64(row.PrecopySuspend)
		}
		if _, err := c.RunJob(job, runDeadline); err != nil {
			return row, err
		}
	}

	// --- Arm 4: incremental capture. One full base then deltas, full
	// again every FullEvery generations, as the supervisor schedules it.
	// The generations flush through a content-deduplicated store so the
	// arm also reports the physical bytes each generation actually adds
	// at rest (unique blocks + manifests) next to its wire bytes.
	c := clusterFor(endpoints, cfg)
	ded := c.EnableDedupStore()
	job, err := c.Launch(cfg.spec(app, endpoints, false))
	if err != nil {
		return row, err
	}
	incr := ckpt.NewIncrSet(cfg.Checkpoints + 1) // one base, then deltas
	var fullB, deltaB, storedB metrics.Sample
	var prevStored int64
	for i := 0; i < cfg.Checkpoints; i++ {
		target := float64(i+1) / float64(cfg.Checkpoints+1) * 0.9
		res, err := ckptAt(c, job, target, core.Options{
			Mode: core.Snapshot, Workers: workers, Incr: incr,
			FlushTo: fmt.Sprintf("bench/incr/g%02d", i),
		})
		if err != nil {
			return row, fmt.Errorf("ckpt pipeline %s/%d incr %d: %w", app, endpoints, i, err)
		}
		for _, a := range res.Stats.Agents {
			if a.Incremental {
				deltaB.Add(float64(a.WireBytes))
			} else {
				fullB.Add(float64(a.WireBytes))
			}
			if a.PeakBuffered > row.PeakBufferedBytes {
				row.PeakBufferedBytes = a.PeakBuffered
			}
		}
		u := ded.Usage()
		storedB.Add(float64(u.StoredBytes() - prevStored))
		prevStored = u.StoredBytes()
	}
	if _, err := c.RunJob(job, runDeadline); err != nil {
		return row, err
	}
	row.FullBytes = int64(fullB.Mean())
	row.DeltaBytes = int64(deltaB.Mean())
	if row.DeltaBytes > 0 {
		row.BytesReduction = float64(row.FullBytes) / float64(row.DeltaBytes)
	}
	row.StoredBytesPerGen = int64(storedB.Mean())
	if n := cfg.Checkpoints; n > 0 {
		row.LogicalBytesPerGen = ded.Usage().LogicalBytes / int64(n)
	}

	// --- Host wall-clock encoder throughput over the parallel arm's
	// images: decode once, then time repeated parallel re-encodes.
	var images []*ckpt.Image
	var totalBytes int64
	for _, rec := range records {
		img, err := ckpt.DecodeImageWith(rec, workers)
		if err != nil {
			return row, err
		}
		images = append(images, img)
		totalBytes += int64(len(rec))
		row.Procs += len(img.Procs)
	}
	const reps = 8
	encStart := time.Now()
	for r := 0; r < reps; r++ {
		for _, img := range images {
			img.EncodeParallel(workers)
		}
	}
	if el := time.Since(encStart).Seconds(); el > 0 {
		row.EncodeMBps = float64(totalBytes*reps) / (1 << 20) / el
	}

	// --- Compressed-vs-RAW frame pricing: stream-encode the same images
	// with compression disabled, then decode both record sets back.
	// Throughputs are over the respective wire bytes, so the four
	// figures are directly comparable to EncodeMBps.
	var rawRecords [][]byte
	var rawBytes int64
	for _, img := range images {
		var buf bytes.Buffer
		if _, err := img.EncodeStreamWith(&buf, imgfmt.StreamOpts{NoCompress: true}); err != nil {
			return row, err
		}
		rawRecords = append(rawRecords, buf.Bytes())
		rawBytes += int64(buf.Len())
	}
	encStart = time.Now()
	for r := 0; r < reps; r++ {
		for _, img := range images {
			if _, err := img.EncodeStreamWith(io.Discard, imgfmt.StreamOpts{NoCompress: true}); err != nil {
				return row, err
			}
		}
	}
	if el := time.Since(encStart).Seconds(); el > 0 {
		row.EncodeRawMBps = float64(rawBytes*reps) / (1 << 20) / el
	}
	decode := func(recs [][]byte, n int64) (float64, error) {
		t0 := time.Now()
		for r := 0; r < reps; r++ {
			for _, rec := range recs {
				if _, err := ckpt.DecodeImageWith(rec, workers); err != nil {
					return 0, err
				}
			}
		}
		if el := time.Since(t0).Seconds(); el > 0 {
			return float64(n*reps) / (1 << 20) / el, nil
		}
		return 0, nil
	}
	if row.DecodeMBps, err = decode(records, totalBytes); err != nil {
		return row, err
	}
	if row.DecodeRawMBps, err = decode(rawRecords, rawBytes); err != nil {
		return row, err
	}
	row.Wall = time.Since(start)
	return row, nil
}

// Record converts a row into the JSON trajectory record appended to
// BENCH_ckpt.json.
func (r CkptPipelineRow) Record(cfg ExperimentConfig, when string) metrics.CkptBenchRecord {
	cfg = cfg.defaults()
	return metrics.CkptBenchRecord{
		Schema:             metrics.BenchSchema,
		When:               when,
		Seed:               cfg.Seed,
		Pods:               r.Pods,
		Procs:              r.Procs,
		Workers:            r.Workers,
		SeqSimMs:           float64(r.SeqCkpt) / 1e6,
		ParSimMs:           float64(r.ParCkpt) / 1e6,
		SimSpeedup:         r.SimSpeedup,
		FullBytes:          r.FullBytes,
		DeltaBytes:         r.DeltaBytes,
		BytesReduction:     r.BytesReduction,
		EncodeMBps:         r.EncodeMBps,
		PeakBufferedBytes:  r.PeakBufferedBytes,
		SuspendUs:          float64(r.PrecopySuspend) / 1e3,
		ScSuspendUs:        float64(r.ScSuspend) / 1e3,
		PrecopyRounds:      r.PrecopyRounds,
		PrecopyResentBytes: r.PrecopyResentBytes,
		EncodeRawMBps:      r.EncodeRawMBps,
		DecodeMBps:         r.DecodeMBps,
		DecodeRawMBps:      r.DecodeRawMBps,
		StoredBytesPerGen:  r.StoredBytesPerGen,
		LogicalBytesPerGen: r.LogicalBytesPerGen,
		WallNs:             int64(r.Wall),
	}
}

// CkptPipelineTable formats pipeline rows for terminal output.
func CkptPipelineTable(rows []CkptPipelineRow) string {
	t := metrics.NewTable("app", "pods", "procs", "workers", "seq-ckpt", "par-ckpt", "speedup", "full-img", "delta-img", "reduction", "encode", "decode", "peak-buf", "sc-susp", "pre-susp", "dt-gain", "rounds", "stored/gen")
	for _, r := range rows {
		t.Row(r.App, r.Pods, r.Procs, r.Workers, r.SeqCkpt, r.ParCkpt,
			fmt.Sprintf("%.2fx", r.SimSpeedup),
			metrics.HumanBytes(r.FullBytes), metrics.HumanBytes(r.DeltaBytes),
			fmt.Sprintf("%.1fx", r.BytesReduction),
			fmt.Sprintf("%.0f MiB/s", r.EncodeMBps),
			fmt.Sprintf("%.0f MiB/s", r.DecodeMBps),
			metrics.HumanBytes(r.PeakBufferedBytes),
			r.ScSuspend, r.PrecopySuspend,
			fmt.Sprintf("%.1fx", r.SuspendReduction),
			r.PrecopyRounds,
			metrics.HumanBytes(r.StoredBytesPerGen))
	}
	return t.String()
}
