GO ?= go

.PHONY: ci vet build test race bench examples clean

# Full CI gate: static checks, a clean build, and the race-enabled suite.
ci: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/migrate
	$(GO) run ./examples/faultrecovery

clean:
	$(GO) clean ./...
