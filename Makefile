GO ?= go
FUZZTIME ?= 5s
BENCH_OUT ?= BENCH_ckpt.json
# Shared flags for every race-enabled scenario gate, so new gates pick
# up the same detector and caching policy by default.
GOTESTFLAGS ?= -race -count=1
GOTEST = $(GO) test $(GOTESTFLAGS)

.PHONY: ci fmt vet build test race race-precopy fuzz chaos dedup-check scale-check obs-check standby-check cover bench benchdiff trace-check examples clean

# Full CI gate: static checks, a clean build, the race-enabled suite,
# the pre-copy live-checkpoint scenario under the race detector, short
# fuzzing of the image-format decoders, trace determinism, the chaos
# fuzzer sweep + corpus replay gate, the dedup-store layout gate, the
# coordination-tree scaling gate, the observability/availability gate,
# the warm-standby replication gate, and coverage totals.
ci: fmt vet build race race-precopy fuzz trace-check chaos dedup-check scale-check obs-check standby-check cover

# gofmt gate: fails listing any file that is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Explicit pre-copy scenario gate: suspend-window win, chain restore
# equivalence, determinism and budget termination, all under -race.
race-precopy:
	$(GOTEST) -run '^TestPrecopy' .

# Short, deterministic-budget fuzz passes over every image-format entry
# point (TLV decoder, round-trip property, full+delta image decoder).
# Raise FUZZTIME for a real fuzzing session.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime $(FUZZTIME) ./internal/imgfmt
	$(GO) test -run '^$$' -fuzz '^FuzzRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/imgfmt
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeV3$$' -fuzztime $(FUZZTIME) ./internal/imgfmt
	$(GO) test -run '^$$' -fuzz '^FuzzRoundTripV3$$' -fuzztime $(FUZZTIME) ./internal/imgfmt
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeImage$$' -fuzztime $(FUZZTIME) ./internal/ckpt
	$(GO) test -run '^$$' -fuzz '^FuzzReadJSONL$$' -fuzztime $(FUZZTIME) ./internal/trace

# Trace determinism gate: the traced crash-and-failover scenario run
# twice with the same seed must export byte-identical JSONL event logs.
trace-check:
	@dir=$$(mktemp -d); \
	$(GO) run ./cmd/zapc-bench -fig trace -events $$dir/a.jsonl -trace $$dir/a.json >/dev/null && \
	$(GO) run ./cmd/zapc-bench -fig trace -events $$dir/b.jsonl -trace $$dir/b.json >/dev/null && \
	cmp $$dir/a.jsonl $$dir/b.jsonl && echo "trace-check: deterministic ($$(wc -l < $$dir/a.jsonl) events)"; \
	st=$$?; rm -rf $$dir; exit $$st

# Chaos gate: the seeded fault-schedule fuzzer under -race (schedule
# determinism, composition coverage, and the recovery invariant over a
# fixed seed range), a bounded driver sweep over the canonical corpus
# seed range, and the regression replay — any fixture under
# testdata/chaos that stops reproducing its recorded named error fails
# the build.
chaos:
	$(GOTEST) ./internal/chaos
	$(GOTEST) -run '^TestChaosCorpusReplays$$' .
	$(GO) run ./cmd/zapc-chaos -from 1 -to 24
	$(GO) run ./cmd/zapc-chaos -from 10000 -to 10008
	$(GO) run ./cmd/zapc-chaos -from 20000 -to 20008

# Dedup-store layout gate: two generations with overlapping content,
# written twice into fresh stores, must produce byte-identical physical
# layouts (content-addressed blocks + deterministic manifests), and the
# refcount/pin lifecycle must never strand or lose a block. Runs the
# deterministic-layout, shared-blocks, GC, and sweep properties under
# -race, plus the supervisor's mid-commit crash scenario.
dedup-check:
	$(GOTEST) -run '^TestDedup' ./internal/imagestore
	$(GOTEST) -run '^TestDedupGCNeverStrandsReferencedBlocks$$' ./internal/supervisor
	$(GOTEST) -run '^TestV3ChurnStoredBytesReduction$$' .

# Coordination-tree scaling gate: the topology unit suite, the
# cross-topology bit-identity property, and the full 1024-pod scaling
# point (flat star vs fan-out-16 tree), all under -race, then the
# benchdiff coordination-barrier comparison against the recorded
# trajectory.
scale-check:
	$(GOTEST) ./internal/coord
	$(GOTEST) -run '^TestCoordCrossTopologyBitIdentity$$|^TestCoordScalingSublinear$$' .
	ZAPC_SCALE=1 $(GOTEST) -timeout 30m -run '^TestCoordScaling1024$$' .
	$(GO) run ./cmd/zapc-benchdiff $(BENCH_OUT)

# Observability gate: the trace-analyzer and metric-naming unit suites
# under -race, the failover RTO/RPO scenario gates (determinism, bench
# stamping, naming lint over the canonical scenario), byte-determinism
# of the critical-path render across two same-seed runs, a strict
# dangling-span check on the canonical trace, and the benchdiff RTO
# comparison against the recorded trajectory.
obs-check:
	$(GOTEST) -run '^TestCriticalPath|^TestContainment|^TestWindow|^TestStraggler|^TestAnalyzer|^TestFailoverReport|^TestPhaseStats|^TestCheckMetricName|^TestRegistryCheckNames|^TestLegacyAliases|^TestWriteProm' ./internal/trace
	$(GOTEST) -run '^TestFailoverRTO|^TestMetricNamesConform$$' .
	@dir=$$(mktemp -d); \
	$(GO) run ./cmd/zapc-bench -fig trace -events $$dir/a.jsonl -trace $$dir/a.json >/dev/null && \
	$(GO) run ./cmd/zapc-bench -fig trace -events $$dir/b.jsonl -trace $$dir/b.json >/dev/null && \
	$(GO) run ./cmd/zapc-inspect -trace -strict $$dir/a.jsonl >/dev/null && \
	$(GO) run ./cmd/zapc-inspect -critpath -rto $$dir/a.jsonl > $$dir/a.txt && \
	$(GO) run ./cmd/zapc-inspect -critpath -rto $$dir/b.jsonl > $$dir/b.txt && \
	sed "s,$$dir/a,TRACE," $$dir/a.txt > $$dir/a.norm && \
	sed "s,$$dir/b,TRACE," $$dir/b.txt > $$dir/b.norm && \
	cmp $$dir/a.norm $$dir/b.norm && echo "obs-check: critical-path render deterministic ($$(wc -l < $$dir/a.norm) lines)"; \
	st=$$?; rm -rf $$dir; exit $$st
	$(GO) run ./cmd/zapc-benchdiff $(BENCH_OUT)

# Warm-standby replication gate: the plane's unit suite (shipping,
# CRC-verified apply, watermark resume, promotion handover), the
# supervisor's ack-pinned GC scenario, and the end-to-end standby
# scenarios — promoted-vs-store speedup floor, cross-path result
# equivalence, shadow byte-identity, trace determinism, and the
# standby_* metric lint — all under -race, then the benchdiff gate
# holding the recorded standby RTO and speedup floor.
standby-check:
	$(GOTEST) ./internal/standby
	$(GOTEST) -run '^TestGCPinsUnackedGenerations$$' ./internal/supervisor
	$(GOTEST) -timeout 20m -run '^TestStandby' .
	$(GO) run ./cmd/zapc-benchdiff $(BENCH_OUT)

# Coverage profile plus per-package totals.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

# Benchmarks across every package, then the checkpoint-pipeline
# trajectory run and its regression gate (>25% encode-throughput drop,
# >25% peak-buffered-bytes growth, or >25% pre-copy suspend-window
# growth vs the previous record fails), then the traced pipeline run
# with its phase/metric summary.
bench:
	$(GO) test -bench=. -benchmem ./...
	$(GO) run ./cmd/zapc-bench -fig ckpt -out $(BENCH_OUT)
	$(GO) run ./cmd/zapc-benchdiff $(BENCH_OUT)
	$(GO) run ./cmd/zapc-bench -fig trace

benchdiff:
	$(GO) run ./cmd/zapc-benchdiff $(BENCH_OUT)

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/migrate
	$(GO) run ./examples/faultrecovery

clean:
	$(GO) clean ./...
	rm -f coverage.out
