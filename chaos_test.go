package zapc_test

import (
	"testing"

	"zapc"
)

// TestChaosCorpusReplays is the regression gate over the chaos corpus:
// every minimized fixture under testdata/chaos must replay to exactly
// its recorded verdict — same outcome, same named error, same result,
// same number of fired faults. A fixture that stops reproducing means
// the recovery surface changed behavior for a scenario the fuzzer
// already pinned; either the change is a bug, or the fixture must be
// consciously regenerated (zapc-chaos -out testdata/chaos) with the
// new verdict reviewed.
func TestChaosCorpusReplays(t *testing.T) {
	fixtures, names, err := zapc.LoadChaosCorpus("testdata/chaos")
	if err != nil {
		t.Fatal(err)
	}
	if len(fixtures) == 0 {
		t.Fatal("testdata/chaos holds no fixtures; the regression corpus is gone")
	}
	for i, f := range fixtures {
		f := f
		t.Run(names[i], func(t *testing.T) {
			got, err := f.Replay()
			if err != nil {
				t.Fatal(err)
			}
			if !got.Same(f.Verdict) {
				t.Fatalf("replayed %s, recorded %s (detail: %s)", got, f.Verdict, got.Detail)
			}
			if got.Bug() {
				t.Fatalf("corpus pins an unresolved invariant violation: %s", got)
			}
		})
	}
}
