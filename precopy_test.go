package zapc_test

// Pre-copy live checkpointing properties: the suspend window shrinks
// from O(image) to O(residual dirty set); the flushed chain — base
// image, round deltas, residual — reconstructs byte-identically to the
// image the restart uses; restores from pre-copy chains reproduce the
// uninterrupted result exactly; the whole pipeline stays a pure
// function of the seed; and a write-heavy application terminates the
// iteration on its budget rather than looping forever.

import (
	"bytes"
	"fmt"
	"testing"

	"zapc"
	"zapc/internal/ckpt"
	"zapc/internal/core"
)

// churnSpec deploys the synthetic write-heavy workload whose dirty rate
// never converges below the pre-copy threshold.
func churnSpec() zapc.JobSpec {
	return zapc.JobSpec{App: "churn", Endpoints: 4, Work: 1, Scale: 0.002, WithDaemons: true}
}

// refFor runs a job spec uninterrupted and returns its result.
func refFor(t *testing.T, seed int64, spec zapc.JobSpec) float64 {
	t.Helper()
	c := zapc.New(zapc.Config{Nodes: 4, Seed: seed})
	job, err := c.Launch(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunJob(job, eqDeadline); err != nil {
		t.Fatal(err)
	}
	return job.Result()
}

// TestPrecopySuspendWindow pins the headline claim: at equal image
// bytes, a pre-copy checkpoint suspends the application for a small
// fraction of a stop-and-copy checkpoint's window. The benchmark gate
// demands >=3x; this test asserts a conservative 1.5x so modeling-cost
// tweaks do not turn it flaky.
func TestPrecopySuspendWindow(t *testing.T) {
	run := func(pre bool) (zapc.Duration, int64) {
		c := zapc.New(zapc.Config{Nodes: 4, Seed: 2005})
		// Model paper-scale images (the job's ballast is scaled by
		// 0.002) so the windows reflect real copy costs.
		c.W.Costs.ImageCostScale = 1 / 0.002
		job, err := c.Launch(eqSpec())
		if err != nil {
			t.Fatal(err)
		}
		driveTo(t, c, job, 0.4)
		opts := zapc.CheckpointOptions{Mode: zapc.Snapshot, Workers: 4}
		if pre {
			opts.Precopy = &zapc.PrecopyOptions{}
		}
		res, err := c.Checkpoint(job, opts)
		if err != nil {
			t.Fatal(err)
		}
		var imgBytes int64
		for _, a := range res.Stats.Agents {
			imgBytes += a.ImageBytes
			if a.SuspendWindow <= 0 {
				t.Fatalf("pod %s: no suspend window recorded", a.Pod)
			}
		}
		if _, err := c.RunJob(job, eqDeadline); err != nil {
			t.Fatal(err)
		}
		return res.Stats.MaxSuspendWindow(), imgBytes
	}
	scWin, scBytes := run(false)
	preWin, preBytes := run(true)
	// Same seed, same progress point: the images must be the same size
	// (the app's footprint is static; only contents drift during the
	// live rounds).
	if diff := float64(preBytes-scBytes) / float64(scBytes); diff > 0.02 || diff < -0.02 {
		t.Fatalf("image bytes diverged between modes: stop-and-copy %d vs pre-copy %d", scBytes, preBytes)
	}
	ratio := float64(scWin) / float64(preWin)
	t.Logf("suspend window: stop-and-copy %v vs pre-copy %v (%.1fx)", scWin, preWin, ratio)
	if ratio < 1.5 {
		t.Fatalf("pre-copy suspend window %v is not >=1.5x better than stop-and-copy %v (%.2fx)",
			preWin, scWin, ratio)
	}
}

// TestPrecopyRestoreEquivalence: checkpoint a write-heavy job with
// pre-copy (budget-terminated, so the chain carries live round deltas),
// verify the flushed chain reconstructs byte-identically to the
// materialized final image, restart from it, and demand the exact
// uninterrupted result.
func TestPrecopyRestoreEquivalence(t *testing.T) {
	for _, seed := range []int64{5, 23} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			want := refFor(t, seed, churnSpec())

			c := zapc.New(zapc.Config{Nodes: 4, Seed: seed})
			job, err := c.Launch(churnSpec())
			if err != nil {
				t.Fatal(err)
			}
			driveTo(t, c, job, 0.5)
			res, err := c.Checkpoint(job, zapc.CheckpointOptions{
				Mode: zapc.MigrateMode, Workers: 4, FlushTo: "eq/pre",
				Precopy: &zapc.PrecopyOptions{MaxRounds: 3},
			})
			if err != nil {
				t.Fatal(err)
			}
			for vip, img := range res.Images {
				chain := [][]byte{}
				base, err := c.FS.ReadFile(fmt.Sprintf("eq/pre/%s.img", img.PodName))
				if err != nil {
					t.Fatalf("pod %v: flushed base: %v", vip, err)
				}
				chain = append(chain, base)
				for r := 1; ; r++ {
					rec, err := c.FS.ReadFile(fmt.Sprintf("eq/pre/%s.r%02d.delta", img.PodName, r))
					if err != nil {
						break
					}
					chain = append(chain, rec)
				}
				if len(chain) < 3 {
					t.Fatalf("pod %v: churn chain has no live round deltas (%d records) — budget never engaged", vip, len(chain))
				}
				resid, err := c.FS.ReadFile(fmt.Sprintf("eq/pre/%s.delta", img.PodName))
				if err != nil {
					t.Fatalf("pod %v: flushed residual: %v", vip, err)
				}
				chain = append(chain, resid)
				rebuilt, err := ckpt.ReconstructChain(chain)
				if err != nil {
					t.Fatalf("pod %v: chain: %v", vip, err)
				}
				if !bytes.Equal(rebuilt.Encode(), img.Encode()) {
					t.Fatalf("pod %v: pre-copy chain reconstruction differs from the materialized image", vip)
				}
			}
			if _, err := c.Restart(job, res, c.Nodes); err != nil {
				t.Fatal(err)
			}
			if _, err := c.RunJob(job, eqDeadline); err != nil {
				t.Fatal(err)
			}
			if got := job.Result(); got != want {
				t.Fatalf("pre-copy checkpoint+restart result %v != uninterrupted %v", got, want)
			}
		})
	}
}

// TestPrecopyDeterminism: two identically-seeded pre-copy runs flush
// byte-identical chains — base, every round delta, and residual.
func TestPrecopyDeterminism(t *testing.T) {
	run := func() map[string][]byte {
		c := zapc.New(zapc.Config{Nodes: 4, Seed: 7})
		job, err := c.Launch(churnSpec())
		if err != nil {
			t.Fatal(err)
		}
		driveTo(t, c, job, 0.4)
		if _, err := c.Checkpoint(job, zapc.CheckpointOptions{
			Mode: zapc.Snapshot, Workers: 4, FlushTo: "det/pre",
			Precopy: &zapc.PrecopyOptions{MaxRounds: 3},
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.RunJob(job, eqDeadline); err != nil {
			t.Fatal(err)
		}
		return grabFlushed(t, c, "det/pre")
	}
	diffRecords(t, "pre-copy chain", run(), run())
}

// TestPrecopyBudgetTermination: churn rewrites its hot set faster than
// any round can drain it, so the iteration must stop on the round
// budget (or, when configured, the resent-byte budget) — never
// converge, never loop forever — and say so on the trace timeline.
func TestPrecopyBudgetTermination(t *testing.T) {
	stopReasons := func(opts *zapc.PrecopyOptions) (map[string]int, []core.AgentStats) {
		c := zapc.New(zapc.Config{Nodes: 4, Seed: 12})
		tr, _ := c.EnableTracing()
		job, err := c.Launch(churnSpec())
		if err != nil {
			t.Fatal(err)
		}
		driveTo(t, c, job, 0.3)
		res, err := c.Checkpoint(job, zapc.CheckpointOptions{Mode: zapc.Snapshot, Workers: 4, Precopy: opts})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.RunJob(job, eqDeadline); err != nil {
			t.Fatal(err)
		}
		reasons := make(map[string]int)
		for _, ev := range tr.Events() {
			if ev.Name == "ckpt/precopy/stop" && ev.Ph == "I" {
				reasons[ev.Args["reason"]]++
			}
		}
		return reasons, res.Stats.Agents
	}

	reasons, agents := stopReasons(&zapc.PrecopyOptions{MaxRounds: 3})
	if reasons["round-budget"] != len(agents) {
		t.Fatalf("want every agent to stop on round-budget, got %v", reasons)
	}
	for _, a := range agents {
		if a.PrecopyRounds != 3 {
			t.Fatalf("pod %s ran %d rounds, want the budget of 3", a.Pod, a.PrecopyRounds)
		}
		if a.PrecopyResentBytes <= 0 {
			t.Fatalf("pod %s resent no bytes despite a hot working set", a.Pod)
		}
	}

	// The cap is on bytes actually resent on the wire; churn's sparse
	// hot set compresses hard under v3 frames, so the cap sits well
	// below the compressed per-round resend volume.
	reasons, _ = stopReasons(&zapc.PrecopyOptions{MaxRounds: 20, MaxResentBytes: 4 << 10})
	if reasons["byte-budget"] == 0 {
		t.Fatalf("want byte-budget stops with a 4KB resend cap, got %v", reasons)
	}
}
